"""Fig. 12 — scheduling efficiency vs. step time, and consistency (envC).

The paper runs Inception v2 1000 times with and without TAC on the
commodity CPU cluster and shows:

(a) normalized step time is almost entirely explained by the scheduling
    efficiency metric (linear fit, R² = 0.98) — i.e. most iteration-time
    variance comes from random transfer orders;
(b) the step-time CDF under TAC is a sharp step near the best observed
    time while the baseline spreads wide: 95th-percentile normalized step
    time 0.634 (baseline) vs 0.998 (TAC).

Here each simulated iteration plays the role of one run (iterations are
independent in the per-iteration model, matching the paper's independent
trials).
"""

from __future__ import annotations

import time

from ..analysis import (
    empirical_cdf,
    linear_regression,
    normalized_step_time,
    percentile,
    scatter_sketch,
)
from ..ps import ClusterSpec
from ..sweep import SimCell
from .common import Context, ExperimentOutput, finish, render_rows


def run(
    ctx: Context,
    *,
    model: str = "Inception v2",
    n_workers: int = 4,
) -> ExperimentOutput:
    t0 = time.perf_counter()
    runs = ctx.scale.consistency_runs
    cfg = ctx.sim_config(iterations=runs, warmup=0)
    keys = [
        (workload, algorithm)
        for workload in ("training", "inference")
        for algorithm in ("baseline", "tac")
    ]
    cells = [
        SimCell(
            model=model,
            spec=ClusterSpec(n_workers=n_workers, n_ps=1, workload=workload),
            algorithm=algorithm,
            platform="envC",
            config=cfg,
        )
        for workload, algorithm in keys
    ]
    results = dict(zip(keys, ctx.sweep.run_cells(cells)))
    for workload, algorithm in keys:
        ctx.log(f"  fig12 {workload}/{algorithm}: {runs} runs done")

    # --- (a) regression: efficiency vs normalized step time (training) ---
    effs, steps = [], []
    for algorithm in ("baseline", "tac"):
        r = results[("training", algorithm)]
        effs.extend(r.efficiencies.tolist())
        steps.extend(r.iteration_times.tolist())
    norm = normalized_step_time(steps)
    fit = linear_regression(effs, norm.tolist())

    # --- (b) CDF of normalized step time (inference) ----------------------
    base_times = results[("inference", "baseline")].iteration_times
    tac_times = results[("inference", "tac")].iteration_times
    pooled_min = min(base_times.min(), tac_times.min())
    base_norm = pooled_min / base_times
    tac_norm = pooled_min / tac_times
    p95_base = percentile(base_norm, 5)  # 95th pct of slowness = 5th of norm
    p95_tac = percentile(tac_norm, 5)

    rows = []
    for algorithm, norm_vals in (("baseline", base_norm), ("tac", tac_norm)):
        xs, ps = empirical_cdf(norm_vals)
        stride = max(1, len(xs) // 40)
        for x, p in zip(xs[::stride], ps[::stride]):
            rows.append(
                {
                    "series": f"cdf_{algorithm}",
                    "normalized_step_time": round(float(x), 5),
                    "cum_prob": round(float(p), 4),
                }
            )
    summary_rows = [
        {
            "metric": "regression_r2",
            "value": round(fit.r2, 4),
            "paper": 0.98,
        },
        {
            "metric": "p95_norm_step_baseline",
            "value": round(p95_base, 4),
            "paper": 0.63403,
        },
        {
            "metric": "p95_norm_step_tac",
            "value": round(p95_tac, 4),
            "paper": 0.99825,
        },
        {
            "metric": "step_cv_baseline",
            "value": round(float(base_times.std() / base_times.mean()), 4),
            "paper": float("nan"),
        },
        {
            "metric": "step_cv_tac",
            "value": round(float(tac_times.std() / tac_times.mean()), 4),
            "paper": float("nan"),
        },
    ]
    sketch = scatter_sketch(
        effs, norm.tolist(),
        title="Fig. 12a sketch: scheduling efficiency (x) vs normalized step time (y)",
    )
    text = "\n".join(
        [
            f"Fig. 12: {model}, envC, {runs} runs, {n_workers} workers",
            render_rows(summary_rows, "  summary (ours vs paper)", floatfmt=".4f"),
            sketch,
        ]
    )
    return finish(
        ctx,
        "fig12_consistency",
        summary_rows + rows,
        text,
        t0=t0,
        extras={
            "r2": fit.r2,
            "p95_baseline": p95_base,
            "p95_tac": p95_tac,
        },
    )
