"""Fig. 9 — speedup vs. number of parameter servers (envG, 8 workers).

.. deprecated:: use ``repro.api.Session(...).run("fig9")``; this module
   is a shim over the scenario registry (see :mod:`repro.api.scenarios`).
"""

from __future__ import annotations

from ._shim import run_scenario_shim
from .common import Context, ExperimentOutput


def run(ctx: Context, *, algorithm: str = "tic", n_workers: int = 8) -> ExperimentOutput:
    """Deprecated: equivalent to ``Session.run("fig9", ...)``."""
    return run_scenario_shim(
        "fig9", ctx, {"algorithm": algorithm, "n_workers": n_workers}
    )
