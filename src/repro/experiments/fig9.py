"""Fig. 9 — speedup vs. number of parameter servers (envG, 8 workers).

Shape targets: ordering keeps paying as PS count grows (priorities are
per-channel, so multiple shards still benefit); inference gains exceed
training gains; larger models gain more.
"""

from __future__ import annotations

import time

from ..ps import ClusterSpec
from ..sim import speedup_vs_baseline
from .common import Context, ExperimentOutput, finish, render_rows


def run(ctx: Context, *, algorithm: str = "tic", n_workers: int = 8) -> ExperimentOutput:
    t0 = time.perf_counter()
    if ctx.scale.name == "quick":
        n_workers = min(n_workers, max(ctx.scale.worker_counts))
    rows = []
    for workload in ("inference", "training"):
        for model in ctx.scale.models:
            for n_ps in ctx.scale.ps_counts:
                spec = ClusterSpec(n_workers=n_workers, n_ps=n_ps, workload=workload)
                gain, sched, base = speedup_vs_baseline(
                    model, spec, algorithm=algorithm,
                    platform="envG", config=ctx.sim_config(),
                )
                rows.append(
                    {
                        "model": model,
                        "workload": workload,
                        "workers": n_workers,
                        "ps": n_ps,
                        "baseline_sps": round(base.throughput, 1),
                        f"{algorithm}_sps": round(sched.throughput, 1),
                        "speedup_pct": round(gain, 1),
                    }
                )
                ctx.log(f"  fig9 {model} {workload} ps{n_ps}: {gain:+.1f}%")
    text = render_rows(
        rows,
        f"Fig. 9: speedup of {algorithm.upper()} vs baseline, scaling parameter "
        f"servers (envG, {n_workers} workers)",
    )
    return finish(ctx, "fig9_ps_scaling", rows, text, t0=t0)
