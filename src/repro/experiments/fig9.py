"""Fig. 9 — speedup vs. number of parameter servers (envG, 8 workers).

Shape targets: ordering keeps paying as PS count grows (priorities are
per-channel, so multiple shards still benefit); inference gains exceed
training gains; larger models gain more.
"""

from __future__ import annotations

import time

from ..sweep import GridSpec
from .common import Context, ExperimentOutput, finish, render_rows


def run(ctx: Context, *, algorithm: str = "tic", n_workers: int = 8) -> ExperimentOutput:
    t0 = time.perf_counter()
    if ctx.scale.name == "quick":
        n_workers = min(n_workers, max(ctx.scale.worker_counts))
    cells = GridSpec(
        models=ctx.scale.models,
        workloads=("inference", "training"),
        worker_counts=(n_workers,),
        ps_counts=ctx.scale.ps_counts,
        algorithms=(algorithm,),
        platforms=("envG",),
    ).cells(ctx.sim_config())
    rows = []
    for cell, (gain, sched, base) in zip(cells, ctx.sweep.run_speedups(cells)):
        rows.append(
            {
                "model": cell.model,
                "workload": cell.spec.workload,
                "workers": n_workers,
                "ps": cell.spec.n_ps,
                "baseline_sps": round(base.throughput, 1),
                f"{algorithm}_sps": round(sched.throughput, 1),
                "speedup_pct": round(gain, 1),
            }
        )
        ctx.log(
            f"  fig9 {cell.model} {cell.spec.workload} "
            f"ps{cell.spec.n_ps}: {gain:+.1f}%"
        )
    text = render_rows(
        rows,
        f"Fig. 9: speedup of {algorithm.upper()} vs baseline, scaling parameter "
        f"servers (envG, {n_workers} workers)",
    )
    return finish(ctx, "fig9_ps_scaling", rows, text, t0=t0)
