"""Pipelining ablation (extension): does TicTac's benefit survive
per-parameter cross-iteration pipelining?

The paper's protocol measures barrier-to-barrier iterations; a production
PS runtime overlaps the tail of iteration k with the head of k+1. This
driver compares, for baseline and TIC:

* the barrier model's mean iteration time (the paper's measurement), and
* the unrolled window's steady-state iteration time and fill latency.

Expected shape: pipelining shortens both configurations, and TicTac's
relative gain persists (ordering fixes the *intra-iteration* pull phase,
which pipelining does not touch).
"""

from __future__ import annotations

import time

from ..ps import ClusterSpec
from ..sim import SimConfig, simulate_pipelined
from ..sweep import FnTask, SimCell
from .common import Context, ExperimentOutput, finish, render_rows


def pipelined_metrics(
    model: str,
    n_workers: int,
    window: int,
    algorithm: str,
    iterations: int,
    seed: int,
) -> dict:
    """Steady-state metrics of one unrolled-window run (sweep task; the
    unrolled cluster graph is not a plain grid cell)."""
    spec = ClusterSpec(n_workers=n_workers, n_ps=1, workload="training")
    cfg = SimConfig(seed=seed, iterations=iterations, warmup=0)
    result = simulate_pipelined(
        model, spec, window=window, algorithm=algorithm,
        platform="envG", config=cfg,
    )
    return {
        "steady_s": result.mean_steady_iteration_time,
        "fill_s": result.fill_latency,
    }


def run(
    ctx: Context,
    *,
    model: str = "ResNet-50 v1",
    n_workers: int = 4,
    window: int = 4,
) -> ExperimentOutput:
    t0 = time.perf_counter()
    spec = ClusterSpec(n_workers=n_workers, n_ps=1, workload="training")
    cfg = ctx.sim_config(iterations=max(2, ctx.scale.iterations // 2), warmup=0)
    algorithms = ("baseline", "tic")
    barriers = ctx.sweep.run_cells(
        [
            SimCell(model=model, spec=spec, algorithm=a, platform="envG", config=cfg)
            for a in algorithms
        ]
    )
    pipelineds = ctx.sweep.run_tasks(
        [
            FnTask.make(
                pipelined_metrics,
                model=model,
                n_workers=n_workers,
                window=window,
                algorithm=a,
                iterations=cfg.iterations,
                seed=cfg.seed,
            )
            for a in algorithms
        ]
    )
    rows = []
    for algorithm, barrier, pipelined in zip(algorithms, barriers, pipelineds):
        rows.append(
            {
                "algorithm": algorithm,
                "barrier_ms": round(barrier.mean_iteration_time * 1e3, 1),
                "pipelined_steady_ms": round(pipelined["steady_s"] * 1e3, 1),
                "pipelining_gain_pct": round(
                    (barrier.mean_iteration_time - pipelined["steady_s"])
                    / barrier.mean_iteration_time * 100, 1,
                ),
                "fill_latency_ms": round(pipelined["fill_s"] * 1e3, 1),
            }
        )
        ctx.log(f"  pipelining {algorithm}: done")
    base, tic = rows
    tic["tic_gain_pipelined_pct"] = round(
        (base["pipelined_steady_ms"] - tic["pipelined_steady_ms"])
        / base["pipelined_steady_ms"] * 100, 1,
    )
    text = render_rows(
        rows,
        f"Pipelining ablation ({model}, {n_workers} workers, training, "
        f"window={window}): barrier model vs per-parameter pipelining",
    )
    return finish(ctx, "pipelining_ablation", rows, text, t0=t0)
