"""Pipelining ablation (extension): does TicTac's benefit survive
per-parameter cross-iteration pipelining?

The paper's protocol measures barrier-to-barrier iterations; a production
PS runtime overlaps the tail of iteration k with the head of k+1. This
driver compares, for baseline and TIC:

* the barrier model's mean iteration time (the paper's measurement), and
* the unrolled window's steady-state iteration time and fill latency.

Expected shape: pipelining shortens both configurations, and TicTac's
relative gain persists (ordering fixes the *intra-iteration* pull phase,
which pipelining does not touch).
"""

from __future__ import annotations

import time

from ..ps import ClusterSpec
from ..sim import simulate_cluster, simulate_pipelined
from .common import Context, ExperimentOutput, finish, render_rows


def run(
    ctx: Context,
    *,
    model: str = "ResNet-50 v1",
    n_workers: int = 4,
    window: int = 4,
) -> ExperimentOutput:
    t0 = time.perf_counter()
    spec = ClusterSpec(n_workers=n_workers, n_ps=1, workload="training")
    cfg = ctx.sim_config(iterations=max(2, ctx.scale.iterations // 2), warmup=0)
    rows = []
    for algorithm in ("baseline", "tic"):
        barrier = simulate_cluster(
            model, spec, algorithm=algorithm, platform="envG", config=cfg
        )
        pipelined = simulate_pipelined(
            model, spec, window=window, algorithm=algorithm,
            platform="envG", config=cfg,
        )
        rows.append(
            {
                "algorithm": algorithm,
                "barrier_ms": round(barrier.mean_iteration_time * 1e3, 1),
                "pipelined_steady_ms": round(
                    pipelined.mean_steady_iteration_time * 1e3, 1
                ),
                "pipelining_gain_pct": round(
                    (barrier.mean_iteration_time
                     - pipelined.mean_steady_iteration_time)
                    / barrier.mean_iteration_time * 100, 1,
                ),
                "fill_latency_ms": round(pipelined.fill_latency * 1e3, 1),
            }
        )
        ctx.log(f"  pipelining {algorithm}: done")
    base, tic = rows
    tic["tic_gain_pipelined_pct"] = round(
        (base["pipelined_steady_ms"] - tic["pipelined_steady_ms"])
        / base["pipelined_steady_ms"] * 100, 1,
    )
    text = render_rows(
        rows,
        f"Pipelining ablation ({model}, {n_workers} workers, training, "
        f"window={window}): barrier model vs per-parameter pipelining",
    )
    return finish(ctx, "pipelining_ablation", rows, text, t0=t0)
