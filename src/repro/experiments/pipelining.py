"""Pipelining ablation (extension): cross-iteration overlap vs barrier.

.. deprecated:: use ``repro.api.Session(...).run("pipelining")``; this
   module is a shim over the scenario registry
   (see :mod:`repro.api.scenarios`).
"""

from __future__ import annotations

from ..api.scenarios import pipelined_metrics  # noqa: F401 — legacy re-export
from ._shim import run_scenario_shim
from .common import Context, ExperimentOutput


def run(
    ctx: Context,
    *,
    model: str = "ResNet-50 v1",
    n_workers: int = 4,
    window: int = 4,
) -> ExperimentOutput:
    """Deprecated: equivalent to ``Session.run("pipelining", ...)``."""
    return run_scenario_shim(
        "pipelining",
        ctx,
        {"model": model, "n_workers": n_workers, "window": window},
    )
