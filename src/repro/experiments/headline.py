"""Headline claims (§1/abstract): aggregate maxima over the sweeps.

.. deprecated:: use ``repro.api.Session(...).run("headline")``; this
   module is a shim over the scenario registry
   (see :mod:`repro.api.scenarios`).
"""

from __future__ import annotations

from ._shim import run_scenario_shim
from .common import Context, ExperimentOutput


def run(ctx: Context, *, algorithm: str = "tic") -> ExperimentOutput:
    """Deprecated: equivalent to ``Session.run("headline", ...)``."""
    return run_scenario_shim("headline", ctx, {"algorithm": algorithm})
