"""Headline claims (§1/abstract): aggregate maxima over the sweeps.

The paper's abstract: "TicTac improves the throughput by up to 37.7% in
inference and 19.2% in training, while also reducing straggler effect by
up to 2.3x." This driver scans the worker-scaling sweep plus a straggler
comparison and reports our corresponding maxima.
"""

from __future__ import annotations

import time

from . import fig7
from .common import Context, ExperimentOutput, finish, render_rows


def run(ctx: Context, *, algorithm: str = "tic") -> ExperimentOutput:
    t0 = time.perf_counter()
    best = {"inference": (-1e9, ""), "training": (-1e9, "")}
    worst = (1e9, "")
    straggler_ratios = []
    # The headline scan is exactly Fig. 7's grid, so a run that follows
    # (or precedes) fig7 resolves entirely from the sweep cache.
    cells = fig7.grid(ctx, algorithm).cells(ctx.sim_config())
    for cell, (gain, sched, base) in zip(cells, ctx.sweep.run_speedups(cells)):
        workload, w = cell.spec.workload, cell.spec.n_workers
        tag = f"{cell.model}/w{w}"
        if gain > best[workload][0]:
            best[workload] = (gain, tag)
        if gain < worst[0]:
            worst = (gain, tag)
        if w > 1 and sched.max_straggler_pct > 0:
            straggler_ratios.append(
                (base.max_straggler_pct / max(sched.max_straggler_pct, 1e-9),
                 tag + "/" + workload)
            )
    best_straggler = max(straggler_ratios) if straggler_ratios else (float("nan"), "n/a")
    rows = [
        {
            "claim": "max inference speedup",
            "ours_pct": round(best["inference"][0], 1),
            "paper_pct": 37.7,
            "where": best["inference"][1],
        },
        {
            "claim": "max training speedup",
            "ours_pct": round(best["training"][0], 1),
            "paper_pct": 19.2,
            "where": best["training"][1],
        },
        {
            "claim": "worst slowdown",
            "ours_pct": round(worst[0], 1),
            "paper_pct": -4.2,
            "where": worst[1],
        },
        {
            "claim": "max straggler reduction (x)",
            "ours_pct": round(best_straggler[0], 2),
            "paper_pct": 2.3,
            "where": best_straggler[1],
        },
    ]
    text = render_rows(rows, "Headline claims (abstract) — ours vs paper")
    return finish(ctx, "headline", rows, text, t0=t0)
