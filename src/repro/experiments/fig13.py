"""Fig. 13 / Appendix B — TIC vs. TAC on the commodity CPU cluster (envC).

The paper compares both heuristics against the no-scheduling baseline on
Inception v2, VGG-16 and AlexNet v2 (training and inference) and finds
them comparable — DAG structure alone captures most of the benefit for
current models — with envC's 1 GbE making gains larger than envG's
(up to ~75%).
"""

from __future__ import annotations

import time

from ..models import ENVC_MODEL_NAMES
from ..ps import ClusterSpec
from ..sweep import SimCell
from .common import Context, ExperimentOutput, finish, render_rows


def run(ctx: Context, *, n_workers: int = 4) -> ExperimentOutput:
    t0 = time.perf_counter()
    cells = [
        SimCell(
            model=model,
            spec=ClusterSpec(n_workers=n_workers, n_ps=1, workload=workload),
            algorithm=algorithm,
            platform="envC",
            config=ctx.sim_config(),
        )
        for workload in ("inference", "training")
        for model in ENVC_MODEL_NAMES
        for algorithm in ("tic", "tac")
    ]
    speedups = iter(ctx.sweep.run_speedups(cells))
    rows = []
    for workload in ("inference", "training"):
        for model in ENVC_MODEL_NAMES:
            entry = {
                "model": model,
                "workload": workload,
                "workers": n_workers,
            }
            for algorithm in ("tic", "tac"):
                gain, _, base = next(speedups)
                entry[f"{algorithm}_speedup_pct"] = round(gain, 1)
                entry["baseline_sps"] = round(base.throughput, 1)
            rows.append(entry)
            ctx.log(
                f"  fig13 {model} {workload}: tic {entry['tic_speedup_pct']:+.1f}% "
                f"tac {entry['tac_speedup_pct']:+.1f}%"
            )
    text = render_rows(
        rows,
        f"Fig. 13: TIC and TAC speedup vs baseline (envC, {n_workers} workers)",
    )
    return finish(ctx, "fig13_tic_vs_tac", rows, text, t0=t0)
