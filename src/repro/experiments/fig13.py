"""Fig. 13 / Appendix B — TIC vs. TAC on the commodity CPU cluster (envC).

.. deprecated:: use ``repro.api.Session(...).run("fig13")``; this module
   is a shim over the scenario registry (see :mod:`repro.api.scenarios`).
"""

from __future__ import annotations

from ._shim import run_scenario_shim
from .common import Context, ExperimentOutput


def run(ctx: Context, *, n_workers: int = 4) -> ExperimentOutput:
    """Deprecated: equivalent to ``Session.run("fig13", n_workers=...)``."""
    return run_scenario_shim("fig13", ctx, {"n_workers": n_workers})
