"""Straggler-source decomposition (extends §6.3).

.. deprecated:: use ``repro.api.Session(...).run("stragglers")``; this
   module is a shim over the scenario registry
   (see :mod:`repro.api.scenarios`).
"""

from __future__ import annotations

from ..api.scenarios import SLOWDOWNS  # noqa: F401 — legacy re-export
from ._shim import run_scenario_shim
from .common import Context, ExperimentOutput


def run(ctx: Context, *, model: str = "ResNet-50 v1", n_workers: int = 4) -> ExperimentOutput:
    """Deprecated: equivalent to ``Session.run("stragglers", ...)``."""
    return run_scenario_shim(
        "stragglers", ctx, {"model": model, "n_workers": n_workers}
    )
