"""Straggler-source decomposition (extends §6.3).

The paper attributes straggling to two causes: "system-level performance
variations and efficiency of scheduling on individual workers", and shows
scheduling removes the second. This driver separates the two experimentally:

* **scheduling-induced** — homogeneous workers, baseline vs TIC: the
  straggler % that enforcement eliminates;
* **system-induced** — one worker's compute slowed by a factor (a
  preempted/oversubscribed cloud VM): scheduling cannot remove this
  component, and the residual straggler % under TIC quantifies it.

The sweep also shows the two compose: with a slow worker, TIC still
removes the scheduling component (total straggling drops to roughly the
hardware-imbalance floor).
"""

from __future__ import annotations

import time

from ..ps import ClusterSpec
from ..sweep import SimCell
from .common import Context, ExperimentOutput, finish, render_rows

SLOWDOWNS = (1.0, 1.25, 1.5)


def run(ctx: Context, *, model: str = "ResNet-50 v1", n_workers: int = 4) -> ExperimentOutput:
    t0 = time.perf_counter()
    spec = ClusterSpec(n_workers=n_workers, n_ps=1, workload="training")
    points = [
        (slowdown, algorithm)
        for slowdown in SLOWDOWNS
        for algorithm in ("baseline", "tic")
    ]
    cells = [
        SimCell(
            model=model,
            spec=spec,
            algorithm=algorithm,
            platform="envG",
            config=ctx.sim_config(
                device_slowdown=()
                if slowdown == 1.0
                else (("worker:0", slowdown),)
            ),
        )
        for slowdown, algorithm in points
    ]
    rows = []
    for (slowdown, algorithm), result in zip(points, ctx.sweep.run_cells(cells)):
        rows.append(
            {
                "model": model,
                "slow_worker_factor": slowdown,
                "algorithm": algorithm,
                "iteration_ms": round(result.mean_iteration_time * 1e3, 1),
                "straggler_pct_max": round(result.max_straggler_pct, 2),
                "straggler_pct_mean": round(result.mean_straggler_pct, 2),
            }
        )
        if algorithm == "tic":
            ctx.log(f"  stragglers x{slowdown}: done")
    text = render_rows(
        rows,
        "Straggler decomposition (extends §6.3): scheduling-induced vs "
        f"system-induced straggling ({model}, {n_workers} workers, envG)",
    )
    return finish(ctx, "straggler_decomposition", rows, text, t0=t0)
