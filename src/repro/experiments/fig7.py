"""Fig. 7 — throughput speedup vs. number of workers (envG).

Protocol: workers in {1, 2, 4, 8, 16} with PS:workers fixed at 1:4, cloud
GPU platform, both training and inference, gains of TIC relative to the
no-scheduling baseline. (The paper uses TIC as the representative
scheduler in envG, Appendix B.)

Shape targets: gains up to the tens of percent; larger models gain more;
gains grow with worker count until communication saturates, then shrink;
small models at small scale may lose a few percent to overhead.
"""

from __future__ import annotations

import time

from ..ps import ClusterSpec
from ..sim import speedup_vs_baseline
from .common import Context, ExperimentOutput, finish, ps_for_workers, render_rows


def run(ctx: Context, *, algorithm: str = "tic") -> ExperimentOutput:
    t0 = time.perf_counter()
    rows = []
    for workload in ("inference", "training"):
        for model in ctx.scale.models:
            for w in ctx.scale.worker_counts:
                spec = ClusterSpec(
                    n_workers=w, n_ps=ps_for_workers(w), workload=workload
                )
                gain, sched, base = speedup_vs_baseline(
                    model,
                    spec,
                    algorithm=algorithm,
                    platform="envG",
                    config=ctx.sim_config(),
                )
                rows.append(
                    {
                        "model": model,
                        "workload": workload,
                        "workers": w,
                        "ps": spec.n_ps,
                        "baseline_sps": round(base.throughput, 1),
                        f"{algorithm}_sps": round(sched.throughput, 1),
                        "speedup_pct": round(gain, 1),
                    }
                )
                ctx.log(
                    f"  fig7 {model} {workload} w{w}ps{spec.n_ps}: {gain:+.1f}%"
                )
    text = render_rows(
        rows,
        f"Fig. 7: throughput speedup of {algorithm.upper()} vs baseline, "
        "scaling workers (envG, PS:W = 1:4)",
    )
    return finish(ctx, "fig7_worker_scaling", rows, text, t0=t0)
