"""Fig. 7 — throughput speedup vs. number of workers (envG).

.. deprecated:: use ``repro.api.Session(...).run("fig7")``; this module
   is a shim over the scenario registry (see :mod:`repro.api.scenarios`).
"""

from __future__ import annotations

from ..api.scenarios import FIG7_GRID
from ..sweep import GridSpec
from ._shim import run_scenario_shim
from .common import Context, ExperimentOutput


def grid(ctx: Context, algorithm: str) -> GridSpec:
    """Fig. 7's slice of the evaluation grid (legacy helper; the
    declarative form is ``repro.api.scenarios.FIG7_GRID``)."""
    return GridSpec(
        models=ctx.scale.models,
        workloads=FIG7_GRID.workloads,
        worker_counts=ctx.scale.worker_counts,
        ps_from_workers=True,
        algorithms=(algorithm,),
        platforms=FIG7_GRID.platforms,
    )


def run(ctx: Context, *, algorithm: str = "tic") -> ExperimentOutput:
    """Deprecated: equivalent to ``Session.run("fig7", algorithm=...)``."""
    return run_scenario_shim("fig7", ctx, {"algorithm": algorithm})
