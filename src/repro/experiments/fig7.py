"""Fig. 7 — throughput speedup vs. number of workers (envG).

Protocol: workers in {1, 2, 4, 8, 16} with PS:workers fixed at 1:4, cloud
GPU platform, both training and inference, gains of TIC relative to the
no-scheduling baseline. (The paper uses TIC as the representative
scheduler in envG, Appendix B.)

Shape targets: gains up to the tens of percent; larger models gain more;
gains grow with worker count until communication saturates, then shrink;
small models at small scale may lose a few percent to overhead.
"""

from __future__ import annotations

import time

from ..sweep import GridSpec
from .common import Context, ExperimentOutput, finish, render_rows


def grid(ctx: Context, algorithm: str) -> GridSpec:
    """Fig. 7's slice of the evaluation grid (shared with the headline
    scan, so their cells cache-hit each other)."""
    return GridSpec(
        models=ctx.scale.models,
        workloads=("inference", "training"),
        worker_counts=ctx.scale.worker_counts,
        ps_from_workers=True,
        algorithms=(algorithm,),
        platforms=("envG",),
    )


def run(ctx: Context, *, algorithm: str = "tic") -> ExperimentOutput:
    t0 = time.perf_counter()
    cells = grid(ctx, algorithm).cells(ctx.sim_config())
    speedups = ctx.sweep.run_speedups(cells)
    rows = []
    for cell, (gain, sched, base) in zip(cells, speedups):
        rows.append(
            {
                "model": cell.model,
                "workload": cell.spec.workload,
                "workers": cell.spec.n_workers,
                "ps": cell.spec.n_ps,
                "baseline_sps": round(base.throughput, 1),
                f"{algorithm}_sps": round(sched.throughput, 1),
                "speedup_pct": round(gain, 1),
            }
        )
        ctx.log(
            f"  fig7 {cell.model} {cell.spec.workload} "
            f"w{cell.spec.n_workers}ps{cell.spec.n_ps}: {gain:+.1f}%"
        )
    text = render_rows(
        rows,
        f"Fig. 7: throughput speedup of {algorithm.upper()} vs baseline, "
        "scaling workers (envG, PS:W = 1:4)",
    )
    return finish(ctx, "fig7_worker_scaling", rows, text, t0=t0)
