"""Raw per-iteration trace events, as recorded by the engine kernels.

:class:`TraceEvents` is the lowest layer of :mod:`repro.obs`: the flat
arrays both event-loop kernels fill when ``SimConfig.trace`` is on.
It deliberately knows nothing about clusters, schedules or resources —
op ids index into the owning :class:`~repro.sim.engine.CompiledCore`'s
arrays, and :class:`repro.obs.trace.Trace` joins the two into named,
reduced views.

The streams are **kernel-invariant**: the python loop and the array
(numba/portable) kernel replay the same event order, so the recorded
arrays are bit-identical between kernels for the same
``(core, schedule, config, iteration)``. The parity suite pins this
(``tests/obs/test_trace_parity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class TraceEvents:
    """One iteration's raw event streams (op ids index the core).

    Per-op arrays (length ``core.n``; every op is enqueued and
    dispatched exactly once per iteration):

    * ``ready`` — the time the op entered its ready/channel queue;
    * ``depth`` — the queue length observed at the moment the op was
      picked for dispatch (eligible compute-queue size for compute ops,
      channel queue length for transfers), the op itself included.

    Chunk streams (one entry per wire occupancy; a transfer of ``k``
    chunks contributes ``k`` entries):

    * ``chunk_op`` — the transfer op occupying the wire;
    * ``chunk_start`` / ``chunk_dur`` — when, and for how long.

    Dispatch and finish times are not duplicated here — they are the
    ``start``/``end`` arrays already carried by
    :class:`~repro.sim.engine.IterationRecord`.
    """

    ready: np.ndarray
    depth: np.ndarray
    chunk_op: np.ndarray
    chunk_start: np.ndarray
    chunk_dur: np.ndarray

    @property
    def n_chunk_events(self) -> int:
        return int(self.chunk_op.shape[0])

    def same_stream(self, other: "TraceEvents") -> bool:
        """Bitwise equality of two event streams (the kernel-parity
        predicate: no tolerance, the kernels must agree exactly)."""
        return (
            np.array_equal(self.ready, other.ready)
            and np.array_equal(self.depth, other.depth)
            and np.array_equal(self.chunk_op, other.chunk_op)
            and np.array_equal(self.chunk_start, other.chunk_start)
            and np.array_equal(self.chunk_dur, other.chunk_dur)
        )
