"""Trace exporters: Chrome trace-event JSON (Perfetto) and tidy CSV.

Two export shapes serve two audiences:

- :func:`chrome_trace` emits the `Chrome trace-event format
  <https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
  — load the file at https://ui.perfetto.dev (or ``chrome://tracing``)
  and every device and NIC wire channel becomes a swim-lane; under a
  multi-job mix each job gets its own process group with a stable color.
  Compute ops render as complete ("X") events on their device track;
  wire chunks render on their channel track, so a saturated link is
  visibly solid and a §5.1-stalled transfer shows as a gap between its
  queue-enter and wire entry.
- :func:`trace_rows` / :func:`write_csv` emit one tidy row per op
  (identity, timing, queueing, scheduling columns) for notebook/pandas
  analysis without any viewer.

:data:`EXPORTERS` maps exporter names to writer callables; unknown names
raise :class:`UnknownExporterError` with a ``difflib`` did-you-mean.
:func:`validate_chrome_trace` checks the emitted JSON against the schema
subset the viewers require (CI runs it on every trace leg).
"""

from __future__ import annotations

import difflib
import json
from typing import Optional

from .trace import Trace

#: Stable Perfetto color names, cycled per job so co-scheduled jobs are
#: visually separable (single-job traces use the first entry only).
_JOB_COLORS = (
    "thread_state_running",
    "rail_response",
    "thread_state_iowait",
    "rail_animation",
    "thread_state_runnable",
    "rail_idle",
)

_US = 1e6  # trace-event timestamps are microseconds


class UnknownExporterError(KeyError):
    """Raised for exporter names not in :data:`EXPORTERS`; carries a
    did-you-mean suggestion when one is close enough."""

    def __init__(self, name: str) -> None:
        self.name = name
        hints = difflib.get_close_matches(name, sorted(EXPORTERS), n=1)
        msg = (
            f"unknown exporter {name!r}; available: {sorted(EXPORTERS)}"
        )
        if hints:
            msg += f" — did you mean {hints[0]!r}?"
        super().__init__(msg)

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


def chrome_trace(trace: Trace, path: Optional[str] = None):
    """Render ``trace`` as a Chrome trace-event dict; write it to
    ``path`` as JSON when given.

    Track layout: one process ("pid") per job — or a single ``cluster``
    process for single-job traces — holding one thread per compute
    device plus one per wire channel its transfers use. Compute ops
    emit one complete event each; transfers emit one event per wire
    chunk occupancy (so multi-pass transfers show their interleaving).
    Event ``args`` carry the observability columns (queue-enter, wait,
    depth, priority) for the Perfetto detail pane.
    """
    events: list = []
    wait = trace.wait()
    n_res = len(trace.resource_names)

    def pid_of(op: int) -> int:
        j = int(trace.job[op])
        return j + 1 if 0 <= j < len(trace.jobs) else 0

    # process/thread metadata: names turn raw ids into readable lanes.
    procs = {0: "cluster"}
    for j, label in enumerate(trace.jobs):
        procs[j + 1] = f"job:{label}"
    tids: dict[tuple, str] = {}
    for op in range(trace.n_ops):
        pid = pid_of(op)
        if trace.is_transfer[op]:
            c = int(trace.t_chan[op])
            tids[(pid, n_res + c)] = (
                f"wire {trace.resource_names[trace.chan_egress[c]]}"
                f" -> {trace.resource_names[trace.chan_ingress[c]]}"
            )
        else:
            rid = int(trace.op_res[op])
            tids[(pid, rid)] = trace.resource_names[rid]

    # injected fault windows get their own swim-lane on the cluster
    # process (one lane past the wire channels), so degraded periods are
    # visible alongside the ops they slowed.
    fault_tid = n_res + len(trace.chan_egress)
    if trace.fault_windows:
        tids[(0, fault_tid)] = "faults"

    used_pids = {pid for pid, _ in tids}
    for pid in sorted(used_pids):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": procs.get(pid, f"job#{pid}")},
            }
        )
    for (pid, tid), name in sorted(tids.items()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )

    def args_of(op: int) -> dict:
        return {
            "op": op,
            "kind": trace.op_kind(op),
            "ready_us": float(trace.ready[op]) * _US,
            "wait_us": float(wait[op]) * _US,
            "queue_depth": int(trace.depth[op]),
            "priority": int(trace.prio[op]),
        }

    for op in range(trace.n_ops):
        if trace.is_transfer[op]:
            continue
        pid = pid_of(op)
        events.append(
            {
                "name": trace.op_names[op],
                "ph": "X",
                "ts": float(trace.start[op]) * _US,
                "dur": float(trace.end[op] - trace.start[op]) * _US,
                "pid": pid,
                "tid": int(trace.op_res[op]),
                "cname": _JOB_COLORS[pid % len(_JOB_COLORS)],
                "args": args_of(op),
            }
        )
    for i in range(len(trace.chunk_op)):
        op = int(trace.chunk_op[i])
        pid = pid_of(op)
        events.append(
            {
                "name": trace.op_names[op],
                "ph": "X",
                "ts": float(trace.chunk_start[i]) * _US,
                "dur": float(trace.chunk_dur[i]) * _US,
                "pid": pid,
                "tid": n_res + int(trace.t_chan[op]),
                "cname": _JOB_COLORS[pid % len(_JOB_COLORS)],
                "args": args_of(op),
            }
        )

    for kind, entity, w0, w1, rate in trace.fault_windows:
        events.append(
            {
                "name": f"{kind} {entity} @{rate:g}",
                "ph": "X",
                "ts": float(w0) * _US,
                "dur": float(w1 - w0) * _US,
                "pid": 0,
                "tid": fault_tid,
                "cname": "terrible",
                "args": {
                    "kind": kind,
                    "entity": entity,
                    "rate": float(rate),
                },
            }
        )

    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "makespan_s": trace.makespan,
            "n_ops": trace.n_ops,
            "n_jobs": len(trace.jobs) or 1,
            "priority_inversions": trace.out_of_order_handoffs,
            "n_fault_windows": len(trace.fault_windows),
        },
    }
    if path is not None:
        with open(path, "w") as fh:
            json.dump(doc, fh)
    return doc


def validate_chrome_trace(doc) -> None:
    """Assert ``doc`` (dict or JSON path) satisfies the trace-event
    schema subset Perfetto/``chrome://tracing`` require; raises
    ``ValueError`` on the first violation. Used by the CI trace leg."""
    if isinstance(doc, str):
        with open(doc) as fh:
            doc = json.load(fh)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("chrome trace must be an object with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("'traceEvents' must be a non-empty list")
    for i, ev in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                raise ValueError(f"event {i} missing required key {key!r}")
        ph = ev["ph"]
        if ph == "X":
            if "ts" not in ev or "dur" not in ev:
                raise ValueError(f"complete event {i} needs 'ts' and 'dur'")
            if float(ev["dur"]) < 0 or float(ev["ts"]) < 0:
                raise ValueError(f"event {i} has negative ts/dur")
        elif ph == "M":
            if ev["name"] not in ("process_name", "thread_name"):
                raise ValueError(f"metadata event {i} has unknown name")
            if "name" not in ev.get("args", {}):
                raise ValueError(f"metadata event {i} missing args.name")
        else:
            raise ValueError(f"event {i} has unsupported phase {ph!r}")


def trace_rows(trace: Trace) -> list:
    """Tidy per-op rows (delegates to :meth:`Trace.to_rows`)."""
    return trace.to_rows()


def write_csv(trace: Trace, path: str) -> list:
    """Write :func:`trace_rows` to ``path`` as CSV; returns the rows."""
    import csv

    rows = trace_rows(trace)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
    return rows


def _export_chrome(trace: Trace, path: str):
    return chrome_trace(trace, path)


#: exporter name -> ``writer(trace, path)``. ``chrome`` writes
#: Perfetto-loadable JSON; ``csv`` writes tidy per-op rows.
EXPORTERS = {
    "chrome": _export_chrome,
    "csv": write_csv,
}


def get_exporter(name: str):
    """Resolve an exporter by name, with did-you-mean on typos."""
    try:
        return EXPORTERS[name]
    except KeyError:
        raise UnknownExporterError(name) from None
