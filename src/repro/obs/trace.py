"""Per-iteration trace reductions: from raw event streams to answers.

:class:`Trace` joins one :class:`~repro.sim.engine.IterationRecord`'s
event streams (``record.trace`` — queue-enter times, dispatch-time queue
depths, per-chunk wire occupancies) with the static structure of the
variant that produced it (op kinds, resource ids, wire channels,
priority ranks, job tags, op names) into a self-contained object that
can answer the questions observability is for:

- **Where did time go?** — :meth:`critical_path` walks the latest-
  finishing dependency chain and attributes it to compute, wire and
  queue wait; :meth:`overlap` measures the comm/computation overlap the
  paper's schedules exist to create.
- **How busy were the links?** — :meth:`link_utilization` bins the
  chunk stream into per-NIC utilization timelines;
  :meth:`queue_depth_histogram` shows contention at dispatch.
- **Did the scheduler behave?** — :meth:`scheduler_diagnostics` recounts
  priority inversions per §5.1 channel (its total equals
  ``record.out_of_order_handoffs`` by construction); :meth:`job_stats`
  compares per-job transfer waits under multi-job mixes (starvation
  ratios).

A ``Trace`` copies everything it needs out of the variant at
construction, so it stays valid after the variant (or its shared core)
is gone. Build one via :meth:`Trace.from_record` or, end to end from a
scenario name, :func:`repro.obs.capture.capture_trace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .events import TraceEvents


def _merged(intervals: np.ndarray) -> list:
    """``(start, end)`` rows merged into a sorted, disjoint list."""
    if len(intervals) == 0:
        return []
    order = np.argsort(intervals[:, 0], kind="stable")
    merged = []
    cur_lo, cur_hi = intervals[order[0]]
    for lo, hi in intervals[order[1:]]:
        if lo > cur_hi:
            merged.append((float(cur_lo), float(cur_hi)))
            cur_lo, cur_hi = lo, hi
        elif hi > cur_hi:
            cur_hi = hi
    merged.append((float(cur_lo), float(cur_hi)))
    return merged


def _union_length(intervals: np.ndarray) -> float:
    """Total length covered by the union of ``(start, end)`` rows."""
    return sum(hi - lo for lo, hi in _merged(intervals))


def _intersect_length(a: np.ndarray, b: np.ndarray) -> float:
    """Length of (union of a) ∩ (union of b), two-pointer merge."""
    ma, mb = _merged(a), _merged(b)
    i = j = 0
    total = 0.0
    while i < len(ma) and j < len(mb):
        lo = max(ma[i][0], mb[j][0])
        hi = min(ma[i][1], mb[j][1])
        if hi > lo:
            total += hi - lo
        if ma[i][1] < mb[j][1]:
            i += 1
        else:
            j += 1
    return total


@dataclass
class Trace:
    """One traced iteration, joined with its variant's static structure.

    All arrays are parallel over op id unless noted. ``ready`` is the
    queue-enter time (when dependencies released the op), ``start`` the
    dispatch (wire/engine entry), ``end`` the finish; ``depth`` is the
    queue length observed at dispatch (including the op itself, -1 for
    ops that never queued); ``prio`` the static schedule rank (-1 when
    unprioritized); ``job`` the job index under multi-job mixes (-1 on
    single-job clusters). The chunk stream has one row per wire
    occupancy interval (op id, start, duration).
    """

    makespan: float
    start: np.ndarray
    end: np.ndarray
    ready: np.ndarray
    depth: np.ndarray
    dedicated: np.ndarray
    is_transfer: np.ndarray
    is_chunk: np.ndarray
    op_res: np.ndarray
    t_egress: np.ndarray
    t_ingress: np.ndarray
    t_chan: np.ndarray
    prio: np.ndarray
    job: np.ndarray
    chunk_op: np.ndarray
    chunk_start: np.ndarray
    chunk_dur: np.ndarray
    op_names: list
    resource_names: list
    capacity: np.ndarray
    jobs: tuple
    chan_egress: list
    chan_ingress: list
    out_of_order_handoffs: int
    succ_indptr: np.ndarray
    succ_indices: np.ndarray
    #: per-§5.1-channel ``(op_ids, expected_ranks)`` pairs (empty when
    #: enforcement is off — then there is nothing to invert).
    ooo_groups: list = field(default_factory=list)
    #: injected fault windows, name-resolved: ``(kind, entity, w0, w1,
    #: rate)`` rows where kind is ``"compute"``/``"wire"`` (empty when
    #: the variant ran fault-free). See :mod:`repro.faults`.
    fault_windows: list = field(default_factory=list)
    #: logical ``(src, dst)`` device pair per wire channel id (the fault
    #: layer's link naming; empty on pre-fault cores).
    chan_devices: list = field(default_factory=list)

    # -- construction ----------------------------------------------------
    @classmethod
    def from_record(cls, variant, record) -> "Trace":
        """Join ``record``'s event streams with ``variant``'s structure.

        Raises ``ValueError`` when the record carries no trace (run the
        variant with ``SimConfig(trace=True)``). Op names degrade to
        ``op#<id>`` when the core's graph is a detached shared-memory
        stand-in.
        """
        ev: Optional[TraceEvents] = record.trace
        if ev is None:
            raise ValueError(
                "record has no trace events; simulate with "
                "SimConfig(trace=True) (tracing is opt-in)"
            )
        core = variant.core
        g = core.cluster.graph
        names = [g.op(i).name for i in range(core.n)]
        return cls(
            makespan=record.makespan,
            start=record.start,
            end=record.end,
            ready=ev.ready,
            depth=ev.depth,
            dedicated=record.dedicated,
            is_transfer=np.asarray(core.is_transfer),
            is_chunk=np.asarray(core.is_chunk),
            op_res=np.asarray(core.op_res),
            t_egress=np.asarray(core.t_egress),
            t_ingress=np.asarray(core.t_ingress),
            t_chan=np.asarray(core.t_chan),
            prio=np.asarray(variant._prio_arr, dtype=np.int64),
            job=np.asarray(core.job_of),
            chunk_op=ev.chunk_op,
            chunk_start=ev.chunk_start,
            chunk_dur=ev.chunk_dur,
            op_names=names,
            resource_names=core.resource_names(),
            capacity=np.asarray(core.capacity),
            jobs=tuple(core.jobs),
            chan_egress=list(core.chan_eid),
            chan_ingress=list(core.chan_iid),
            out_of_order_handoffs=record.out_of_order_handoffs,
            succ_indptr=np.asarray(core.succ_indptr),
            succ_indices=np.asarray(core.succ_indices),
            ooo_groups=[(ids, ranks) for ids, ranks, _ in variant._ooo_groups],
            fault_windows=list(getattr(variant, "fault_windows", [])),
            chan_devices=list(getattr(core, "chan_devices", [])),
        )

    # -- basic views -----------------------------------------------------
    @property
    def n_ops(self) -> int:
        return len(self.start)

    @property
    def n_chunk_events(self) -> int:
        return len(self.chunk_op)

    def op_kind(self, op: int) -> str:
        if self.is_chunk[op]:
            return "chunk"
        return "transfer" if self.is_transfer[op] else "compute"

    def job_label(self, op: int) -> str:
        j = int(self.job[op])
        return self.jobs[j] if 0 <= j < len(self.jobs) else "cluster"

    def wait(self) -> np.ndarray:
        """Queue wait per op: dispatch minus queue-enter, seconds.
        NaN for ops whose queue-enter was never observed."""
        with np.errstate(invalid="ignore"):
            w = self.start - self.ready
        return np.where(np.isnan(self.ready), np.nan, np.maximum(w, 0.0))

    # -- reductions ------------------------------------------------------
    def queue_depth_histogram(self) -> dict:
        """``{"compute": {depth: count}, "transfer": {depth: count}}``
        over dispatch-time queue depths (self included, so >= 1)."""
        out: dict = {"compute": {}, "transfer": {}}
        for kind, mask in (
            ("compute", ~self.is_transfer),
            ("transfer", self.is_transfer),
        ):
            depths = self.depth[mask & (self.depth >= 0)]
            values, counts = np.unique(depths, return_counts=True)
            out[kind] = {int(v): int(c) for v, c in zip(values, counts)}
        return out

    def _nic_intervals(self) -> dict:
        """Wire occupancy intervals per NIC resource id, from the chunk
        stream (a chunk occupies both its egress and ingress NIC)."""
        by_nic: dict[int, list] = {}
        chan = self.t_chan[self.chunk_op]
        t1 = self.chunk_start + self.chunk_dur
        for i in range(len(self.chunk_op)):
            c = int(chan[i])
            row = (float(self.chunk_start[i]), float(t1[i]))
            by_nic.setdefault(self.chan_egress[c], []).append(row)
            by_nic.setdefault(self.chan_ingress[c], []).append(row)
        return {rid: np.array(rows) for rid, rows in by_nic.items()}

    def link_utilization(self, bins: int = 50) -> tuple:
        """Per-NIC utilization timeline: ``(edges, {nic_name: util})``.

        ``edges`` has ``bins + 1`` entries spanning ``[0, makespan]``;
        each util array gives the fraction of that NIC's capacity (slot
        count x bin width) occupied by wire chunks in the bin. Values
        can graze 1.0 on saturated links — that is the congestion the
        paper's Fig. 5 argues scheduling should create *less* of.
        """
        edges = np.linspace(0.0, self.makespan or 1.0, bins + 1)
        width = edges[1] - edges[0]
        out: dict[str, np.ndarray] = {}
        for rid, intervals in self._nic_intervals().items():
            busy = np.zeros(bins)
            for lo, hi in intervals:
                first = max(int(np.searchsorted(edges, lo, "right")) - 1, 0)
                last = min(int(np.searchsorted(edges, hi, "left")), bins)
                for b in range(first, last):
                    busy[b] += max(
                        0.0, min(hi, edges[b + 1]) - max(lo, edges[b])
                    )
            util = busy / (width * float(self.capacity[rid]))
            out[self.resource_names[rid]] = util
        return edges, out

    def overlap(self) -> dict:
        """Communication/computation overlap for the iteration.

        ``comm_busy_s``/``comp_busy_s`` are union lengths of wire-chunk
        and compute-op intervals; ``overlap_s`` their intersection;
        ``overlap_frac`` normalizes by the smaller of the two (1.0 =
        the scarcer phase is fully hidden behind the other).
        """
        comm = np.column_stack(
            [self.chunk_start, self.chunk_start + self.chunk_dur]
        ) if len(self.chunk_op) else np.zeros((0, 2))
        comp_ids = np.flatnonzero(~self.is_transfer)
        comp = np.column_stack([self.start[comp_ids], self.end[comp_ids]])
        comp = comp[comp[:, 1] > comp[:, 0]]
        comm_busy = _union_length(comm)
        comp_busy = _union_length(comp)
        overlap_s = _intersect_length(comm, comp)
        scarcer = min(comm_busy, comp_busy)
        return {
            "comm_busy_s": comm_busy,
            "comp_busy_s": comp_busy,
            "overlap_s": overlap_s,
            "overlap_frac": overlap_s / scarcer if scarcer > 0 else 0.0,
        }

    def critical_path(self) -> dict:
        """The latest-finishing dependency chain, with attribution.

        Walks back from the op that defines the makespan, at each step
        following the predecessor that finished last. Returns ``{"ops":
        [...], "compute_s", "comm_s", "wait_s"}`` where each op entry
        carries name/kind/start/end/busy/wait — ``wait`` being the gap
        between the chosen predecessor's finish and this op's dispatch
        (queueing + enforcement stalls). The three totals partition the
        makespan up to the first op's start offset.
        """
        n = self.n_ops
        pred_of = np.full(n, -1, dtype=np.int64)
        pred_end = np.full(n, -np.inf)
        for p in range(n):
            for s in self.succ_indices[
                self.succ_indptr[p]:self.succ_indptr[p + 1]
            ]:
                if self.end[p] > pred_end[s]:
                    pred_end[s] = self.end[p]
                    pred_of[s] = p
        path = []
        op = int(np.argmax(self.end))
        while op >= 0:
            path.append(op)
            op = int(pred_of[op])
        path.reverse()
        ops, comp_s, comm_s, wait_s = [], 0.0, 0.0, 0.0
        prev_end = None
        for op in path:
            busy = float(self.end[op] - self.start[op])
            wait = (
                max(0.0, float(self.start[op]) - prev_end)
                if prev_end is not None
                else 0.0
            )
            kind = self.op_kind(op)
            if self.is_transfer[op]:
                comm_s += busy
            else:
                comp_s += busy
            wait_s += wait
            ops.append(
                {
                    "op": op,
                    "name": self.op_names[op],
                    "kind": kind,
                    "start": float(self.start[op]),
                    "end": float(self.end[op]),
                    "busy_s": busy,
                    "wait_s": wait,
                }
            )
            prev_end = float(self.end[op])
        return {
            "ops": ops,
            "compute_s": comp_s,
            "comm_s": comm_s,
            "wait_s": wait_s,
        }

    def scheduler_diagnostics(self) -> dict:
        """Priority-inversion recount per §5.1 channel.

        Re-derives, from the traced wire-entry order, the same audit the
        engine runs (stable argsort of start times vs. expected ranks);
        ``total_inversions`` therefore equals the record's
        ``out_of_order_handoffs``. Also reports mean/max transfer queue
        wait split by prioritized vs. unprioritized transfers — the
        enforcement knob's visible effect.
        """
        per_channel = []
        total = 0
        for op_ids, ranks in self.ooo_groups:
            order = np.argsort(self.start[op_ids], kind="stable")
            inv = int(
                np.count_nonzero(
                    ranks[order] != np.arange(len(op_ids), dtype=np.int64)
                )
            )
            per_channel.append(inv)
            total += inv
        wait = self.wait()
        tmask = self.is_transfer & ~np.isnan(wait)
        pr = tmask & (self.prio >= 0)
        un = tmask & (self.prio < 0)
        def _stats(mask):
            w = wait[mask]
            if not len(w):
                return {"n": 0, "mean_wait_s": 0.0, "max_wait_s": 0.0}
            return {
                "n": int(len(w)),
                "mean_wait_s": float(w.mean()),
                "max_wait_s": float(w.max()),
            }
        return {
            "total_inversions": total,
            "per_channel_inversions": per_channel,
            "n_channels": len(per_channel),
            "prioritized": _stats(pr),
            "unprioritized": _stats(un),
        }

    def fault_impact(self) -> list:
        """Per-fault-window impact attribution, one row per window.

        Intersects each injected window with the busy intervals of the
        entity it degraded — compute-op ``[start, end]`` spans for
        compute windows, wire-chunk occupancy spans for wire windows —
        and charges ``lost_s = busy_overlap_s * (1 - rate)``: the
        capacity the window removed from the time the entity actually
        spent running under it. This proportional-overlap attribution is
        an approximation (knock-on queueing delays are not chased
        through the DAG), so the summed ``lost_s`` is a lower bound on
        the true makespan inflation. Fault-free traces return ``[]``.
        """
        rows = []
        res_index = {n: i for i, n in enumerate(self.resource_names)}
        chan_of: dict[str, list] = {}
        for c, (src, dst) in enumerate(self.chan_devices):
            chan_of.setdefault(f"{src}->{dst}", []).append(c)
        chunk_chan = (
            self.t_chan[self.chunk_op]
            if len(self.chunk_op)
            else np.zeros(0, dtype=np.int64)
        )
        for kind, entity, w0, w1, rate in self.fault_windows:
            if kind == "compute":
                rid = res_index.get(f"compute:{entity}", -1)
                mask = (~self.is_transfer) & (self.op_res == rid)
                lo, hi = self.start[mask], self.end[mask]
            else:
                chans = chan_of.get(entity, [])
                mask = np.isin(chunk_chan, chans)
                lo = self.chunk_start[mask]
                hi = lo + self.chunk_dur[mask]
            valid = ~(np.isnan(lo) | np.isnan(hi))
            lo, hi = lo[valid], hi[valid]
            ov = np.clip(np.minimum(hi, w1) - np.maximum(lo, w0), 0.0, None)
            rows.append(
                {
                    "kind": kind,
                    "entity": entity,
                    "window_start_s": float(w0),
                    "window_end_s": float(w1),
                    "rate": float(rate),
                    "busy_overlap_s": float(ov.sum()),
                    "lost_s": float(ov.sum() * (1.0 - rate)),
                    "n_ops": int(np.count_nonzero(ov > 0)),
                }
            )
        return rows

    def job_stats(self) -> list:
        """Per-job fairness view for multi-job mixes.

        One row per job: op count, span (first ready to last end),
        wire busy seconds, mean/max transfer wait, and ``starvation`` —
        the job's mean transfer wait over the cluster-wide mean (1.0 =
        fair; >> 1 = this job's transfers queue disproportionately,
        i.e. a neighbour's schedule is starving it). Single-job traces
        return one ``"cluster"`` row with starvation 1.0.
        """
        wait = self.wait()
        tmask = self.is_transfer & ~np.isnan(wait)
        overall = float(wait[tmask].mean()) if tmask.any() else 0.0
        labels = list(self.jobs) if self.jobs else ["cluster"]
        rows = []
        for j, label in enumerate(labels):
            jmask = (self.job == j) if self.jobs else np.ones(
                self.n_ops, dtype=bool
            )
            jt = jmask & tmask
            w = wait[jt]
            mean_wait = float(w.mean()) if len(w) else 0.0
            chunk_mask = jmask[self.chunk_op] if len(self.chunk_op) else (
                np.zeros(0, dtype=bool)
            )
            rows.append(
                {
                    "job": label,
                    "n_ops": int(jmask.sum()),
                    "n_transfers": int(jt.sum()),
                    "span_s": float(
                        self.end[jmask].max() - np.nanmin(self.ready[jmask])
                    )
                    if jmask.any()
                    else 0.0,
                    "wire_busy_s": float(self.chunk_dur[chunk_mask].sum()),
                    "mean_transfer_wait_s": mean_wait,
                    "max_transfer_wait_s": float(w.max()) if len(w) else 0.0,
                    "starvation": mean_wait / overall if overall > 0 else 1.0,
                }
            )
        return rows

    def to_rows(self) -> list:
        """Tidy per-op rows (CSV/DataFrame-friendly): one dict per op
        with identity, timing, queueing and scheduling columns."""
        wait = self.wait()
        rows = []
        for op in range(self.n_ops):
            rid = int(
                self.op_res[op] if self.op_res[op] >= 0 else self.t_egress[op]
            )
            rows.append(
                {
                    "op": op,
                    "name": self.op_names[op],
                    "kind": self.op_kind(op),
                    "resource": self.resource_names[rid] if rid >= 0 else "",
                    "job": self.job_label(op),
                    "ready_s": float(self.ready[op]),
                    "start_s": float(self.start[op]),
                    "end_s": float(self.end[op]),
                    "wait_s": float(wait[op]),
                    "queue_depth": int(self.depth[op]),
                    "priority": int(self.prio[op]),
                    "dedicated_s": float(self.dedicated[op]),
                }
            )
        return rows

    def summary(self) -> dict:
        """One-screen digest: makespan, overlap, critical-path split,
        inversion count, per-kind op counts."""
        cp = self.critical_path()
        ov = self.overlap()
        return {
            "makespan_s": self.makespan,
            "n_ops": self.n_ops,
            "n_transfers": int(self.is_transfer.sum()),
            "n_chunk_events": int(len(self.chunk_op)),
            "critical_compute_s": cp["compute_s"],
            "critical_comm_s": cp["comm_s"],
            "critical_wait_s": cp["wait_s"],
            "overlap_frac": ov["overlap_frac"],
            "priority_inversions": self.out_of_order_handoffs,
            "n_jobs": len(self.jobs) or 1,
        }
