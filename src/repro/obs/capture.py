"""End-to-end trace capture: scenario name -> one traced iteration.

:func:`capture_trace` is the programmatic body of the ``tictac-repro
trace`` subcommand: resolve a registered scenario, expand its grid (or
its job-mix's cell list) exactly as a run would, pick one cell, and
simulate a single iteration of it with ``SimConfig(trace=True)``
directly on a :class:`~repro.sim.engine.SimVariant` — no sweep pool, no
cache — returning the joined :class:`~repro.obs.trace.Trace` plus the
cell it came from. The traced iteration is bit-identical to the same
iteration of a full scenario run (same seed protocol, same schedule
memoization path); tracing only *adds* event streams.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Union


class TraceCapture(NamedTuple):
    """What :func:`capture_trace` returns: the reduced trace, the cell
    that produced it, the iteration index traced and the event-loop
    kernel that executed it."""

    trace: object
    cell: object
    iteration: int
    kernel: str


def scenario_cells(scenario, scale, params, make_config) -> list:
    """The cells a scenario would sweep, in sweep order.

    Grid scenarios expand their :class:`~repro.api.scenario.Grid`;
    job-mix scenarios expand their ``mix`` parameter's cell list.
    Scenarios that build no cells (e.g. the SGD substrate study) return
    ``[]`` — they have nothing to trace.
    """
    if scenario.grid is not None:
        return scenario.grid.resolve(scale, params, make_config)
    mix = params.get("mix")
    if mix is not None and hasattr(mix, "cells"):
        return mix.cells(make_config())
    return []


def trace_cell(
    cell,
    *,
    iteration: Optional[int] = None,
    kernel: Optional[str] = None,
) -> TraceCapture:
    """Trace one iteration of one :class:`~repro.sweep.spec.SimCell`.

    Simulates the cell directly on a :class:`~repro.sim.engine.SimVariant`
    with tracing forced on (no sweep pool, no cache; the graph and
    wizard memos still apply). ``iteration`` defaults to the first
    measured index (``config.warmup``).
    """
    from ..backends import build_comm_graph, prepare_comm_schedule
    from ..core.schedules import Schedule
    from ..models import build_model
    from ..sim.engine import CompiledCore, SimVariant
    from ..timing import get_platform
    from .trace import Trace

    cfg = cell.config.with_(trace=True)
    if kernel is not None:
        cfg = cfg.with_(kernel=kernel)
    if iteration is None:
        iteration = cfg.warmup

    ir = build_model(cell.model, batch_factor=cell.batch_factor)
    plat = get_platform(cell.platform)
    cluster = build_comm_graph(ir, cell.spec)
    core = CompiledCore(cluster, plat)
    if cell.algorithm == "baseline":
        schedule = Schedule("baseline")
    else:
        schedule = prepare_comm_schedule(
            ir, cell.spec, cell.algorithm, plat, seed=cfg.seed
        )
    variant = SimVariant(core, schedule, cfg)
    record = variant.run_iteration(iteration)
    return TraceCapture(
        trace=Trace.from_record(variant, record),
        cell=cell,
        iteration=iteration,
        kernel=variant.kernel,
    )


def capture_trace(
    scenario: Union[str, object] = "headline",
    *,
    scale: str = "quick",
    seed: int = 0,
    cell_index: int = 0,
    iteration: Optional[int] = None,
    kernel: Optional[str] = None,
    **overrides,
) -> TraceCapture:
    """Trace one iteration of one cell of a registered scenario.

    ``cell_index`` selects among the scenario's resolved cells (default:
    the first); ``iteration`` defaults to the first *measured* iteration
    (index ``warmup``); ``kernel`` overrides the event-loop kernel
    (``python``/``portable``/``numba`` — streams are identical across
    kernels, so this only matters for speed); remaining keyword
    arguments rebind scenario parameters as ``Session.run`` would.

    Raises ``ValueError`` for scenarios that expand to no simulation
    cells, listing the traceable ones.
    """
    from ..api import registry
    from ..api.context import SCALES, Context

    if isinstance(scenario, str):
        scenario = registry.scenario(scenario)
    params = scenario.bind(**overrides)
    ctx = Context(scale=SCALES[scale], seed=seed, verbose=False)
    cells = scenario_cells(scenario, ctx.scale, params, ctx.sim_config)
    if not cells:
        traceable = [
            name
            for name in registry.scenario_names()
            if scenario_cells(
                registry.scenario(name),
                ctx.scale,
                dict(registry.scenario(name).params),
                ctx.sim_config,
            )
        ]
        raise ValueError(
            f"scenario {scenario.name!r} expands to no simulation cells; "
            f"traceable scenarios: {traceable}"
        )
    cell = cells[cell_index % len(cells)]
    return trace_cell(cell, iteration=iteration, kernel=kernel)
