"""``repro.obs`` — opt-in observability: engine tracing + run telemetry.

Three layers, lowest first:

* :mod:`repro.obs.events` — :class:`TraceEvents`, the raw per-iteration
  arrays both engine kernels record when ``SimConfig.trace=True``
  (queue-enter times, dispatch-time queue depths, per-chunk wire
  occupancies). Zero overhead when off: the flag gates every write and
  tracing consumes no RNG, so traced and untraced runs are bit-identical.
* :mod:`repro.obs.trace` — :class:`Trace`, the joined view over one
  traced iteration (events + core topology + schedule ranks) with the
  reductions the paper's analysis needs: per-link utilization timelines,
  queue-depth histograms, comm/comp overlap fraction, critical-path
  attribution, and scheduler diagnostics (priority inversions, per-job
  starvation under job mixes).
* :mod:`repro.obs.export` — exporters: Chrome trace-event JSON (loads in
  Perfetto / ``chrome://tracing``) and a tidy per-op CSV/row table, plus
  a schema validator CI runs against every emitted file.

:mod:`repro.obs.telemetry` is the sibling subsystem for *run*-level
observability: structured counters (cells executed, cache hits, shared
core publishes, wall time) the sweep runner emits and
``ResultSet.telemetry`` surfaces. :mod:`repro.obs.capture` holds the
``tictac-repro trace`` entry point that runs one scenario cell traced
and writes the exporter outputs.

This package is intentionally *above* the simulation layers: nothing in
``repro.sim``/``repro.sweep`` imports it except the tiny
:class:`TraceEvents` container, and it is not part of the sweep cache's
code fingerprint — editing an exporter never invalidates cached results.
"""

from __future__ import annotations

from .events import TraceEvents

__all__ = [
    "TraceEvents",
    "Trace",
    "Telemetry",
    "EXPORTERS",
    "UnknownExporterError",
    "capture_trace",
    "chrome_trace",
    "trace_rows",
    "validate_chrome_trace",
]


def __getattr__(name: str):
    # Lazy re-exports: keep `repro.sim.engine`'s import of TraceEvents
    # from dragging the reduction/export/capture layers (and their
    # transitive repro.api imports) into every engine import.
    if name == "Trace":
        from .trace import Trace

        return Trace
    if name == "Telemetry":
        from .telemetry import Telemetry

        return Telemetry
    if name in ("EXPORTERS", "UnknownExporterError", "chrome_trace",
                "trace_rows", "validate_chrome_trace"):
        from . import export

        return getattr(export, name)
    if name == "capture_trace":
        from .capture import capture_trace

        return capture_trace
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
