"""Run-level telemetry: structured counters for the sweep/API layers.

Where :mod:`repro.obs.trace` looks *inside* one simulated iteration,
:class:`Telemetry` watches the machinery *around* it: how many cells a
run asked for, how many were deduplicated, served from the on-disk
cache, or actually simulated; how many compile-once groups and shared
cores that took; how much worker wall time the simulations consumed and
how busy that kept the pool. The :class:`~repro.sweep.runner.SweepRunner`
owns one instance and increments it as batches flow through;
:func:`repro.api.engine.execute_scenario` snapshots it around each
scenario and publishes the delta as ``ResultSet.telemetry``.

Counters are plain floats in a flat namespace — cheap enough to leave on
permanently (they are always collected; only *trace* recording is
opt-in). All counts are from the driver process's point of view: memo
hits inside pool workers stay in those workers, and worker simulation
time is what the workers themselves report (``sim_wall_s``), so
``pool occupancy = sim_wall_s / (run_wall_s * jobs)``.

Counter schema (all optional — absent means zero):

========================  ====================================================
``run_cells_calls``       ``SweepRunner.run_cells`` invocations
``run_cells_wall_s``      driver wall time spent inside ``run_cells``
``cells_requested``       cells passed in (before dedupe)
``cells_deduped``         duplicates collapsed within a batch
``cells_cached``          cells served from the on-disk cache
``cells_simulated``       cells actually simulated
``sim_wall_s``            worker-side wall time over all simulations
``cell_wall_max_s``       slowest single simulation unit
``groups_run``            one-task-per-group units executed
``cores_published``       shared-memory core publishes (phase A)
``shared_cell_tasks``     cells fanned out against attached cores (phase B,
                          either lane; each task attaches the core once)
``shared_batch_tasks``    batched phase-B tasks (one chunk of a group's
                          cells per worker, variant-batched kernel sweeps)
``schedule_topups``       wizard top-up tasks for reused cores
``fn_tasks``              function tasks executed (non-cell work)
``cache_hits/misses/writes``  on-disk cache counters (delta per scenario)
``wizard_memo_hits/misses``   in-process ordering-wizard memo counters
``graph_memo_hits/misses``    in-process cluster-graph memo counters
========================  ====================================================
"""

from __future__ import annotations

import time
from typing import Iterable, Mapping


class Telemetry:
    """A flat bag of named counters (str -> float), merge- and
    diff-able so callers can publish per-scenario deltas."""

    __slots__ = ("counters",)

    def __init__(self, counters: Mapping[str, float] | None = None) -> None:
        self.counters: dict[str, float] = dict(counters or {})

    # -- recording -------------------------------------------------------
    def add(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + float(value)

    def peak(self, name: str, value: float) -> None:
        """Track a maximum (e.g. the slowest cell) instead of a sum."""
        if float(value) > self.counters.get(name, 0.0):
            self.counters[name] = float(value)

    def timer(self, name: str) -> "_Timer":
        """``with telemetry.timer("run_cells_wall_s"): ...`` adds the
        block's wall seconds to the counter."""
        return _Timer(self, name)

    def merge(self, other: "Telemetry | Mapping[str, float]") -> None:
        counters = other.counters if isinstance(other, Telemetry) else other
        for name, value in counters.items():
            self.add(name, value)

    # -- reading ----------------------------------------------------------
    def get(self, name: str, default: float = 0.0) -> float:
        return self.counters.get(name, default)

    def as_dict(self) -> dict[str, float]:
        return dict(sorted(self.counters.items()))

    def delta_since(self, snapshot: Mapping[str, float]) -> dict[str, float]:
        """Counters accumulated since ``snapshot`` (``as_dict`` output).
        Peak counters are included at their current value when they grew."""
        out: dict[str, float] = {}
        for name, value in self.counters.items():
            d = value - snapshot.get(name, 0.0)
            if d != 0.0:
                out[name] = value if name.endswith("_max_s") else d
        return dict(sorted(out.items()))

    def rows(self) -> list[dict]:
        """Tidy ``{"counter": ..., "value": ...}`` rows (CSV-friendly)."""
        return [
            {"counter": name, "value": value}
            for name, value in sorted(self.counters.items())
        ]

    def __bool__(self) -> bool:
        return bool(self.counters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self.counters.items()))
        return f"Telemetry({inner})"


class _Timer:
    __slots__ = ("_telemetry", "_name", "_t0")

    def __init__(self, telemetry: Telemetry, name: str) -> None:
        self._telemetry = telemetry
        self._name = name

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._telemetry.add(self._name, time.perf_counter() - self._t0)


def memo_counters() -> dict[str, float]:
    """This process's graph/wizard memo counters (see
    :func:`repro.backends.memo_stats`), as telemetry-ready floats."""
    from ..backends import memo_stats

    return {name: float(value) for name, value in memo_stats().items()}


def merge_rows(rows: Iterable[Mapping]) -> dict[str, float]:
    """Fold ``Telemetry.rows()``-shaped rows back into one counter dict
    (used when aggregating several ResultSets)."""
    out: dict[str, float] = {}
    for row in rows:
        name = str(row["counter"])
        out[name] = out.get(name, 0.0) + float(row["value"])
    return dict(sorted(out.items()))
