"""The Ordering Wizard (§5): one entry point from model to schedule.

Mirrors the paper's offline pipeline: build the reference worker partition,
trace it to estimate the time oracle (TAC only), run the chosen heuristic,
return a :class:`~repro.core.schedules.Schedule` whose priorities the
enforcement module applies at every worker. "The priority list is
calculated offline before the execution; all iterations follow the same
order."
"""

from __future__ import annotations

from typing import Optional

from ..models import build_model
from ..models.ir import ModelIR
from ..ps.reference import ReferencePartition, build_reference_partition
from ..timing import Platform, TimeOracleLike, estimate_time_oracle, get_platform
from .baselines import (
    layerwise_schedule,
    random_schedule,
    reverse_layerwise_schedule,
)
from .schedules import Schedule, no_schedule
from .tac import tac, tic_plus
from .tic import tic

ALGORITHMS = (
    "baseline",
    "tic",
    "tac",
    "tic_plus",
    "random",
    "layerwise",
    "reverse_layerwise",
)


def compute_schedule(
    reference: ReferencePartition,
    algorithm: str = "tic",
    *,
    oracle: Optional[TimeOracleLike] = None,
    seed: int = 0,
) -> Schedule:
    """Run one scheduling algorithm on a reference worker partition.

    ``oracle`` is required for ``'tac'`` (the estimated per-op times);
    all other algorithms are timing-independent.
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; one of {ALGORITHMS}")
    if algorithm == "baseline":
        return no_schedule()
    if algorithm == "tic":
        return tic(reference.graph)
    if algorithm == "tic_plus":
        return tic_plus(reference.graph)
    if algorithm == "tac":
        if oracle is None:
            raise ValueError("TAC requires a time oracle (see estimate_time_oracle)")
        return tac(reference.graph, oracle)
    params = reference.recv_params
    if algorithm == "random":
        return random_schedule(params, seed=seed)
    if algorithm == "layerwise":
        return layerwise_schedule(params)
    return reverse_layerwise_schedule(params)


def schedule_model(
    model: str | ModelIR,
    algorithm: str = "tic",
    *,
    workload: str = "training",
    n_ps: int = 1,
    platform: str | Platform = "envG",
    batch_factor: float = 1.0,
    trace_runs: int = 5,
    seed: int = 0,
) -> Schedule:
    """End-to-end convenience: model name -> schedule.

    Builds the model IR (paper batch size x ``batch_factor``), emits the
    reference worker partition for ``workload`` with ``n_ps`` shards,
    traces it on ``platform`` for TAC's oracle (min of ``trace_runs`` runs,
    §5), and runs ``algorithm``.
    """
    ir = model if isinstance(model, ModelIR) else build_model(model, batch_factor=batch_factor)
    reference = build_reference_partition(ir, workload=workload, n_ps=n_ps)
    oracle = None
    if algorithm == "tac":
        plat = get_platform(platform) if isinstance(platform, str) else platform
        oracle = estimate_time_oracle(
            reference.graph, plat, runs=trace_runs, seed=seed
        )
    return compute_schedule(reference, algorithm, oracle=oracle, seed=seed)
