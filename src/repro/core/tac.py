"""TAC — Timing-Aware Communication scheduling (Algorithm 3).

TAC greedily orders the worker's recv ops: while any recv is outstanding,
it re-runs Algorithm 1 (:class:`~repro.core.properties.PropertyEngine`),
selects the minimum outstanding recv under the Eq. 6 comparator
(:mod:`repro.core.comparator`), removes it from the outstanding set and
assigns it the next priority number. The result prioritizes transfers that
unblock computation soonest, accounting for measured op runtimes.

``tic_plus`` runs the same loop under the general time oracle of Eq. 5 —
a timing-independent variant that, unlike single-shot TIC, re-evaluates
``M+``/``P`` as transfers retire. It is the "extension" ablation DESIGN.md
calls out (the paper's Algorithm 2 leaves recvs with no multi-dependency
consumers unordered; the iterative loop orders everything).
"""

from __future__ import annotations

import time as _time
from typing import Callable

import numpy as np

from ..graph import Graph
from ..timing import GeneralTimeOracle, TimeOracleLike
from .comparator import RecvProps, precedes
from .properties import PropertyEngine, PropertySnapshot
from .schedules import Schedule

Comparator = Callable[[RecvProps, RecvProps], bool]


def _argmin_recv(
    snap: PropertySnapshot, comparator: Comparator
) -> int:
    """Index (recv column) of the minimum outstanding recv wrt comparator."""
    candidates = np.flatnonzero(snap.outstanding)
    best = None
    best_props = None
    for k in candidates:
        props = RecvProps(
            M=float(snap.recv_time[k]),
            P=float(snap.P[k]),
            M_plus=float(snap.M_plus[k]),
            index=int(k),
        )
        if best_props is None or comparator(props, best_props):
            best, best_props = int(k), props
    assert best is not None
    return best


def tac(
    graph: Graph,
    time: TimeOracleLike,
    *,
    comparator: Comparator = precedes,
    algorithm_name: str = "tac",
) -> Schedule:
    """Compute the TAC schedule for a reference worker partition.

    ``time`` is the estimated oracle from the tracing pipeline (§5); pass a
    different comparator only for the erratum ablation.
    """
    t0 = _time.perf_counter()
    engine = PropertyEngine(graph, time)
    outstanding = np.ones(engine.n_recv, dtype=bool)
    priorities: dict[str, int] = {}
    count = 0
    while outstanding.any():
        snap = engine.update(outstanding)
        k = _argmin_recv(snap, comparator)
        outstanding[k] = False
        priorities[engine.recv_ops[k].param] = count
        count += 1
    return Schedule(
        algorithm=algorithm_name,
        priorities=priorities,
        meta={
            "wizard_seconds": _time.perf_counter() - t0,
            "n_recv": engine.n_recv,
        },
    )


def tic_plus(graph: Graph) -> Schedule:
    """Iterative timing-independent scheduling (extension; see module doc)."""
    return tac(graph, GeneralTimeOracle(), algorithm_name="tic_plus")
