"""Schedule objects: priority assignments over a worker's recv ops.

A schedule maps each parameter (equivalently, each recv op of the worker
partition — they are 1:1) to a *priority number*: lower numbers transfer
earlier (§3.1). Multiple parameters may share a priority (their relative
order is insignificant); parameters may be missing (unprioritized — the
executor treats them like lowest-priority ops).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence


@dataclass(frozen=True)
class Schedule:
    """A priority assignment produced by the ordering wizard.

    Attributes
    ----------
    algorithm:
        Provenance label (``'tic'``, ``'tac'``, ``'baseline'``, ...).
    priorities:
        Parameter name -> priority number (lower = earlier). Empty for the
        no-scheduling baseline.
    meta:
        Free-form diagnostics (wizard runtime, oracle description, ...).
    """

    algorithm: str
    priorities: Mapping[str, int] = field(default_factory=dict)
    meta: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for p, pr in self.priorities.items():
            if pr < 0:
                raise ValueError(f"negative priority {pr} for {p!r}")

    @property
    def is_empty(self) -> bool:
        return not self.priorities

    def order(self, params: Optional[Sequence[str]] = None) -> list[str]:
        """Parameters sorted by priority (stable within equal priorities).

        ``params`` restricts/orders the domain (e.g. the parameters hosted
        on one PS shard); defaults to every prioritized parameter.
        """
        if params is None:
            params = list(self.priorities)
        known = [p for p in params if p in self.priorities]
        unknown = [p for p in params if p not in self.priorities]
        return sorted(known, key=lambda p: self.priorities[p]) + unknown

    def normalized(self, params: Sequence[str]) -> dict[str, int]:
        """Dense ranks ``0..n-1`` over ``params`` (§5.1's normalization:
        "priorities are sequentially assigned to an integer in the range
        [0, n)" per channel). Ties collapse to distinct consecutive ranks
        in stable order; unprioritized parameters rank last."""
        return {p: i for i, p in enumerate(self.order(params))}


def no_schedule() -> Schedule:
    """The baseline: no priorities — the executor's arbitrary order."""
    return Schedule(algorithm="baseline")


def chunk_ranks(
    schedule: Schedule,
    chunk_params: Mapping[str, Sequence[str]],
    chunk_order: Mapping[str, int],
) -> dict[str, int]:
    """Lower per-parameter priorities onto collective transfer chunks.

    A chunk (a slice of one tensor or a fusion of several — see
    :mod:`repro.collectives.partition`) inherits the *best* (minimum)
    priority among its member parameters: completing the chunk is what
    delivers those parameters, so it is exactly as urgent as its most
    urgent member. Ties — including chunks with no prioritized member —
    break by ``chunk_order`` (layerwise chunk index), keeping ranks
    deterministic and total. Returns dense ranks ``0..n-1`` over every
    chunk, lower = earlier on the wire (§3.1 semantics carried over).
    """
    inf = float("inf")

    def key(name: str) -> tuple:
        prios = [
            schedule.priorities[p]
            for p in chunk_params[name]
            if p in schedule.priorities
        ]
        return (min(prios) if prios else inf, chunk_order[name])

    ordered = sorted(chunk_params, key=key)
    return {name: rank for rank, name in enumerate(ordered)}
