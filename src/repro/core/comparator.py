"""TAC's pairwise recv comparator (§4.3, Cases 1-2, Eq. 6).

For two candidate recv ops A and B with directly-dependent compute loads
``P_A, P_B``, transfer times ``M_A, M_B`` and impending communication
loads ``M+_A, M+_B``, the makespan algebra of Case 1 gives

    A ≺ B  ⟺  min{P_B, M_A} < min{P_A, M_B}            (Eq. 6)

with Case 2 breaking ties by the impending communication load
``M+_A < M+_B``.

Note on the paper's Algorithm 3 listing: as printed, its Comparator
computes ``A ← min(P_A, M_B); B ← min(P_B, M_A); return A < B``, which is
the *negation* of Eq. 6 — it would schedule Figure 1a's ``recv2`` (zero
directly-dependent compute) before ``recv1`` and make the toy example come
out backwards. We treat that as a typesetting slip, implement Eq. 6
(:func:`precedes`), and keep the printed form available as
:func:`precedes_as_printed` so the ablation bench can demonstrate the
inversion.

Note on transitivity: the paper states the comparator "is transitive and
can be used for partial ordering". The precise situation (pinned down in
``tests/core/test_comparator.py``):

* the **strict** Eq. 6 preference (``min{P_B,M_A} < min{P_A,M_B}``) shows
  no cycles on the positive-transfer-time domain (property-tested;
  3M-sample random search found no 3-cycle);
* its **ties**, however, are not an equivalence relation compatible with
  the strict preference: e.g. ``a=(M=2,P=1)``, ``b=(M=1,P=1)``,
  ``c=(M=1,P=2)`` gives ``a ~ b`` and ``b ~ c`` but ``c ≺ a`` strictly, so
  chaining ties through an arbitrary tie-break (M+, then index) can form a
  preference cycle — the relation is not a total preorder in general.

TAC is insensitive to this: Algorithm 3 selects each step's minimum by a
linear argmin scan (never sorts), which is deterministic and well-defined
for any binary relation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RecvProps:
    """The per-recv property triple the comparator consumes."""

    M: float
    P: float
    M_plus: float
    #: stable id used as the final deterministic tie-break.
    index: int = 0


def precedes(a: RecvProps, b: RecvProps) -> bool:
    """``True`` iff recv ``a`` should be scheduled before recv ``b`` (Eq. 6),
    with ties broken by M+ (Case 2) and then by stable index."""
    x = min(b.P, a.M)
    y = min(a.P, b.M)
    if x != y:
        return x < y
    if a.M_plus != b.M_plus:
        return a.M_plus < b.M_plus
    return a.index < b.index


def precedes_as_printed(a: RecvProps, b: RecvProps) -> bool:
    """The comparator exactly as printed in Algorithm 3 (believed erratum).

    Kept for the comparator ablation; see module docstring.
    """
    x = min(a.P, b.M)
    y = min(b.P, a.M)
    if x != y:
        return x < y
    if a.M_plus != b.M_plus:
        return a.M_plus < b.M_plus
    return a.index < b.index
