"""Op properties and Algorithm 1 ("Property Update Algorithm", §4.1).

Given a partitioned graph ``G``, a time oracle and the set ``R`` of
outstanding (to-be-activated) recv ops, Algorithm 1 computes:

* ``op.M`` — *communication time*: total outstanding transfer time the op
  still waits for, ``Σ_{r ∈ op.dep ∩ R} Time(r)``;
* ``recv.P`` — *directly-dependent compute load*: total compute time of
  ops activated by completing this recv alone (ops whose only outstanding
  dependency is this recv);
* ``recv.M+`` — *impending communication load*: the minimum communication
  cost that, together with this recv, activates some multi-dependency op
  (``min`` over ops with ``|dep ∩ R| > 1`` of ``op.M``); ``+inf`` when no
  such op exists.

Two implementations are provided:

* :func:`update_properties_reference` — a literal transcription of
  Algorithm 1 over Python sets. Easy to audit against the paper; used by
  tests as the oracle implementation.
* :class:`PropertyEngine` — a vectorized equivalent over a dense
  ``(n_ops, n_recv)`` dependency matrix. TAC calls it once per scheduling
  step (so |recv| times per model); on ResNet-101-sized graphs the dense
  form is two orders of magnitude faster than the set form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..graph import Graph, Op, dependency_matrix, dependency_sets
from ..timing import TimeOracle, TimeOracleLike

INF = float("inf")


@dataclass
class OpPropertyTables:
    """Algorithm 1's outputs, keyed by op id (reference implementation)."""

    #: op id -> M (all ops).
    M: dict[int, float]
    #: recv op id -> P (outstanding recvs only).
    P: dict[int, float]
    #: recv op id -> M+ (outstanding recvs only).
    M_plus: dict[int, float]


def update_properties_reference(
    graph: Graph,
    time: TimeOracleLike,
    outstanding: Iterable[int],
) -> OpPropertyTables:
    """Literal Algorithm 1. ``outstanding`` holds recv op ids (the set R)."""
    oracle = TimeOracle.wrap(time)
    R = set(outstanding)
    recv_ids = {op.op_id for op in graph.recv_ops()}
    if not R <= recv_ids:
        raise ValueError(f"outstanding contains non-recv ops: {sorted(R - recv_ids)[:3]}")
    dep = dependency_sets(graph)
    t = {op.op_id: oracle(op) for op in graph}

    # Line 2-4: op.M for every op.
    M = {op.op_id: sum(t[r] for r in dep[op.op_id] & R) for op in graph}
    # Line 5-8: initialize P and M+ for outstanding recvs.
    P = {r: 0.0 for r in R}
    M_plus = {r: INF for r in R}
    # Line 9-17: accumulate over ops outside R.
    for op in graph:
        if op.op_id in R:
            continue
        D = dep[op.op_id] & R
        if len(D) == 1:
            (r,) = D
            P[r] += t[op.op_id]
        elif len(D) > 1:
            for r in D:
                M_plus[r] = min(M_plus[r], M[op.op_id])
    return OpPropertyTables(M=M, P=P, M_plus=M_plus)


@dataclass
class PropertySnapshot:
    """Vectorized Algorithm 1 outputs for one outstanding set.

    Arrays are indexed by *recv index* (column order of the dependency
    matrix), except ``M`` which is per op id. Entries for non-outstanding
    recvs are meaningless (P/M+) — consult ``outstanding``.
    """

    outstanding: np.ndarray  # bool[n_recv]
    M: np.ndarray  # float[n_ops]
    P: np.ndarray  # float[n_recv]
    M_plus: np.ndarray  # float[n_recv]
    recv_time: np.ndarray  # float[n_recv] — Time(recv_k), the recv's own M


class PropertyEngine:
    """Precomputes dependency structure once; updates properties per step."""

    def __init__(self, graph: Graph, time: TimeOracleLike) -> None:
        self.graph = graph
        self.recv_ops: list[Op] = graph.recv_ops()
        self.n_recv = len(self.recv_ops)
        self.recv_op_ids = np.array([op.op_id for op in self.recv_ops], dtype=np.int64)
        oracle = TimeOracle.wrap(time)
        self.time = oracle.vector(graph)
        if np.any(self.time < 0):
            raise ValueError("time oracle produced negative durations")
        self.dep = dependency_matrix(graph, self.recv_ops)
        self.recv_time = self.time[self.recv_op_ids]
        # Rows that are not recv ops (the G - R iteration of Algorithm 1 is
        # over non-outstanding ops; completed recvs have empty dep ∩ R, so
        # excluding *all* recv rows is equivalent and cheaper).
        n_ops = len(graph)
        self._non_recv_rows = np.ones(n_ops, dtype=bool)
        self._non_recv_rows[self.recv_op_ids] = False
        # Sparse (row, col) indices of the dependency matrix, restricted to
        # non-recv rows, for the scatter-min computing M+.
        rows, cols = np.nonzero(self.dep & self._non_recv_rows[:, None])
        self._nz_rows = rows
        self._nz_cols = cols

    def update(self, outstanding: np.ndarray) -> PropertySnapshot:
        """Run Algorithm 1 for the given outstanding mask (bool[n_recv])."""
        out = np.asarray(outstanding, dtype=bool)
        if out.shape != (self.n_recv,):
            raise ValueError(f"outstanding mask must have shape ({self.n_recv},)")
        # M: total outstanding transfer time below each op.
        M = self.dep[:, out] @ self.recv_time[out] if out.any() else np.zeros(len(self.time))
        counts = self.dep[:, out].sum(axis=1) if out.any() else np.zeros(len(self.time), dtype=int)

        P = np.zeros(self.n_recv)
        M_plus = np.full(self.n_recv, INF)
        if out.any():
            # P: ops (outside R) with exactly one outstanding dependency.
            single = self._non_recv_rows & (counts == 1)
            if single.any():
                masked = self.dep[single][:, out]
                which = masked.argmax(axis=1)  # index within outstanding cols
                out_cols = np.flatnonzero(out)
                np.add.at(P, out_cols[which], self.time[single])
            # M+: scatter-min of op.M over multi-dependency ops.
            multi = self._non_recv_rows & (counts > 1)
            if multi.any():
                sel = multi[self._nz_rows] & out[self._nz_cols]
                np.minimum.at(M_plus, self._nz_cols[sel], M[self._nz_rows[sel]])
        return PropertySnapshot(
            outstanding=out, M=M, P=P, M_plus=M_plus, recv_time=self.recv_time
        )

    def full_snapshot(self) -> PropertySnapshot:
        """Properties with every recv outstanding (TIC's single evaluation)."""
        return self.update(np.ones(self.n_recv, dtype=bool))

    def recv_index_of(self, op_ref) -> int:
        """Dense recv index of a recv op (id/name/Op)."""
        op = self.graph.op(op_ref)
        idx = np.flatnonzero(self.recv_op_ids == op.op_id)
        if idx.size == 0:
            raise KeyError(f"{op.name!r} is not a recv op of this graph")
        return int(idx[0])
