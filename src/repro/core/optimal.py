"""Exact schedule evaluation and brute-force optimal ordering.

The scheduling problem is NP-hard (§3.1 maps it to flow-shop makespan
minimization), so the paper offers heuristics and a *metric* instead of an
optimum. On small DAGs, however, the optimum is computable by exhausting
recv permutations — which lets tests quantify how close TIC/TAC actually
get ("near-optimal scheduling", §1) instead of taking it on faith.

The execution model here is the deterministic single-worker idealization
used throughout §3/§4: one communication channel executing the recv ops in
the given order, one compute resource executing ready ops
earliest-ready-first, no latency, no jitter. It is intentionally simpler
than :mod:`repro.sim` (no chunking, NIC sharing or enforcement) — the
algebra of Eq. 6 is derived for exactly this model.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Optional, Sequence

from ..graph import Graph
from ..timing import TimeOracle, TimeOracleLike
from .schedules import Schedule


def simulate_recv_order(
    graph: Graph, time: TimeOracleLike, recv_order: Sequence[int]
) -> float:
    """Makespan of the single-worker model under a fixed recv order.

    ``recv_order`` lists recv op ids in transfer order; it must be a
    permutation of the graph's recv ops. Compute ops run on one resource,
    earliest-ready-first (ties by op id). Returns the makespan.
    """
    oracle = TimeOracle.wrap(time)
    recv_ids = [op.op_id for op in graph.recv_ops()]
    if sorted(recv_order) != sorted(recv_ids):
        raise ValueError("recv_order must be a permutation of the recv ops")
    t = {op.op_id: oracle(op) for op in graph}
    indeg = {op.op_id: graph.in_degree(op.op_id) for op in graph}

    # Channel: recvs back to back in the given order; finish times known.
    finish: dict[int, float] = {}
    clock = 0.0
    for rid in recv_order:
        clock += t[rid]
        finish[rid] = clock
    makespan = clock

    # Compute resource: list scheduling, earliest-ready-first (ties by id).
    ready_time = {op.op_id: 0.0 for op in graph if not op.is_recv}
    heap: list[tuple[float, int]] = []

    def propagate(op_id: int, done_at: float) -> None:
        for succ in graph.succ_ids(op_id):
            if ready_time.get(succ, -1.0) < done_at:
                ready_time[succ] = done_at
            indeg[succ] -= 1
            if indeg[succ] == 0:
                heapq.heappush(heap, (ready_time[succ], succ))

    # Enqueue initial roots first: propagate() only pushes ops whose indeg
    # it decrements to zero, so doing roots before recv release avoids
    # double-pushing compute ops that depend solely on recvs.
    for op in graph:
        if not op.is_recv and indeg[op.op_id] == 0:
            heapq.heappush(heap, (0.0, op.op_id))
    for rid in recv_order:  # recv finish times are fixed; release eagerly
        propagate(rid, finish[rid])

    compute_clock = 0.0
    n_compute = len(ready_time)
    done = 0
    while heap:
        rt, op_id = heapq.heappop(heap)
        start = max(compute_clock, rt)
        compute_clock = start + t[op_id]
        finish[op_id] = compute_clock
        done += 1
        if compute_clock > makespan:
            makespan = compute_clock
        propagate(op_id, compute_clock)
    if done != n_compute:  # pragma: no cover - DAG guarantees progress
        raise RuntimeError("deadlock in schedule simulation")
    return makespan


def schedule_makespan(
    graph: Graph, time: TimeOracleLike, schedule: Schedule
) -> float:
    """Makespan of a :class:`Schedule` under the single-worker model."""
    by_param = {op.param: op.op_id for op in graph.recv_ops()}
    order = [by_param[p] for p in schedule.order(list(by_param))]
    return simulate_recv_order(graph, time, order)


@dataclass(frozen=True)
class OptimalResult:
    """Outcome of the exhaustive search."""

    best_order: tuple[int, ...]
    best_makespan: float
    worst_makespan: float
    n_evaluated: int

    def optimality_gap(self, makespan: float) -> float:
        """Relative gap of ``makespan`` vs the optimum (0 = optimal)."""
        if self.best_makespan == 0:
            return 0.0
        return makespan / self.best_makespan - 1.0


def optimal_schedule(
    graph: Graph,
    time: TimeOracleLike,
    *,
    max_recvs: int = 8,
) -> OptimalResult:
    """Exhaustively find the best (and worst) recv order.

    Refuses graphs with more than ``max_recvs`` recv ops (the paper notes
    ResNet-v2-152 would need 363! evaluations — that is the point).
    """
    recv_ids = [op.op_id for op in graph.recv_ops()]
    n = len(recv_ids)
    if n > max_recvs:
        raise ValueError(
            f"{n} recv ops => {math.factorial(n)} orders; "
            f"raise max_recvs explicitly if you really mean it"
        )
    best: Optional[tuple[float, tuple[int, ...]]] = None
    worst = 0.0
    count = 0
    for perm in itertools.permutations(recv_ids):
        makespan = simulate_recv_order(graph, time, perm)
        count += 1
        if best is None or makespan < best[0]:
            best = (makespan, perm)
        if makespan > worst:
            worst = makespan
    assert best is not None
    return OptimalResult(
        best_order=best[1],
        best_makespan=best[0],
        worst_makespan=worst,
        n_evaluated=count,
    )
