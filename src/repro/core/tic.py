"""TIC — Timing-Independent Communication scheduling (Algorithm 2).

TIC runs Algorithm 1 once, under the general time oracle of Eq. 5
(``Time(op) = 1`` for recv ops, 0 otherwise), with every recv outstanding,
and uses each recv's impending communication load ``M+`` as its priority:
recvs whose completion (together with the fewest sibling transfers)
unblocks some computation earliest come first.

Because only ops with more than one outstanding recv dependency tighten
``M+`` (Algorithm 1 line 14-16), a recv none of whose downstream ops have
multiple recv dependencies keeps ``M+ = +inf``; Algorithm 2 as published
leaves such recvs with the worst priority, and so do we (the ``tic_plus``
variant in :mod:`repro.core.tac` closes this gap as an extension ablation).

Priorities are normalized to dense ranks, preserving the paper's semantics
that recvs with equal ``M+`` share a priority number (their relative order
is insignificant, §3.1).
"""

from __future__ import annotations

import time as _time

import numpy as np

from ..graph import Graph
from ..timing import GeneralTimeOracle
from .properties import PropertyEngine
from .schedules import Schedule


def dense_ranks(values: np.ndarray) -> np.ndarray:
    """Map values to dense ranks 0..k-1; equal values share a rank and
    ``+inf`` maps to the last rank."""
    order = np.unique(values)  # sorted, +inf (if present) last
    return np.searchsorted(order, values).astype(int)


def tic(graph: Graph) -> Schedule:
    """Compute the TIC schedule for a reference worker partition."""
    t0 = _time.perf_counter()
    engine = PropertyEngine(graph, GeneralTimeOracle())
    snap = engine.full_snapshot()
    ranks = dense_ranks(snap.M_plus)
    priorities = {
        op.param: int(ranks[k]) for k, op in enumerate(engine.recv_ops)
    }
    n_unranked = int(np.sum(np.isinf(snap.M_plus)))
    return Schedule(
        algorithm="tic",
        priorities=priorities,
        meta={
            "wizard_seconds": _time.perf_counter() - t0,
            "n_recv": engine.n_recv,
            "n_priority_groups": int(ranks.max()) + 1 if len(ranks) else 0,
            "n_infinite_m_plus": n_unranked,
        },
    )
