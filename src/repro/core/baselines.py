"""Baseline schedules the paper compares against (explicitly or implicitly).

* :func:`no_schedule` (re-exported from schedules) — vanilla TensorFlow:
  no priorities; every worker's executor picks transfer order arbitrarily.
  This is the paper's baseline in every figure.
* :func:`random_schedule` — a fixed random permutation enforced at every
  worker. §6.3 observes that "enforcing any order reduces straggler effect
  regardless of the quality of the chosen order"; this baseline isolates
  that effect from order quality.
* :func:`layerwise_schedule` — parameters in forward-layer (definition)
  order. This is the natural order for layer-by-layer systems (Poseidon
  et al., §2.1) lifted to DAG models; a strong heuristic for sequential
  networks, blind to branch structure.
* :func:`reverse_layerwise_schedule` — the adversarial order: parameters
  needed first arrive last. Approaches the worst case of Eq. 1.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .schedules import Schedule, no_schedule

__all__ = [
    "no_schedule",
    "random_schedule",
    "layerwise_schedule",
    "reverse_layerwise_schedule",
]


def random_schedule(params: Sequence[str], seed: int = 0) -> Schedule:
    """A uniformly random—but fixed and cluster-wide—priority permutation."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(len(params))
    return Schedule(
        algorithm="random",
        priorities={p: int(perm[i]) for i, p in enumerate(params)},
        meta={"seed": seed},
    )


def layerwise_schedule(params: Sequence[str]) -> Schedule:
    """Definition (forward-layer) order: earlier layers' tensors first."""
    return Schedule(
        algorithm="layerwise",
        priorities={p: i for i, p in enumerate(params)},
    )


def reverse_layerwise_schedule(params: Sequence[str]) -> Schedule:
    """Anti-layer order: an adversarial near-worst-case schedule."""
    n = len(params)
    return Schedule(
        algorithm="reverse_layerwise",
        priorities={p: n - 1 - i for i, p in enumerate(params)},
    )
