"""The paper's contribution: TIC/TAC scheduling and efficiency theory."""

from .baselines import (
    layerwise_schedule,
    no_schedule,
    random_schedule,
    reverse_layerwise_schedule,
)
from .comparator import RecvProps, precedes, precedes_as_printed
from .efficiency import (
    EfficiencyReport,
    lower_makespan,
    scheduling_efficiency,
    theoretical_speedup,
    upper_makespan,
)
from .optimal import (
    OptimalResult,
    optimal_schedule,
    schedule_makespan,
    simulate_recv_order,
)
from .properties import (
    OpPropertyTables,
    PropertyEngine,
    PropertySnapshot,
    update_properties_reference,
)
from .schedules import Schedule
from .serialization import (
    load_schedule,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from .tac import tac, tic_plus
from .tic import dense_ranks, tic
from .wizard import ALGORITHMS, compute_schedule, schedule_model

__all__ = [
    "layerwise_schedule",
    "no_schedule",
    "random_schedule",
    "reverse_layerwise_schedule",
    "RecvProps",
    "precedes",
    "precedes_as_printed",
    "OptimalResult",
    "optimal_schedule",
    "schedule_makespan",
    "simulate_recv_order",
    "EfficiencyReport",
    "lower_makespan",
    "scheduling_efficiency",
    "theoretical_speedup",
    "upper_makespan",
    "OpPropertyTables",
    "PropertyEngine",
    "PropertySnapshot",
    "update_properties_reference",
    "Schedule",
    "load_schedule",
    "save_schedule",
    "schedule_from_dict",
    "schedule_to_dict",
    "tac",
    "tic_plus",
    "dense_ranks",
    "tic",
    "ALGORITHMS",
    "compute_schedule",
    "schedule_model",
]
