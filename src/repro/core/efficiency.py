"""Scheduling-efficiency theory (§3.2, Eq. 1-4).

Given a partitioned graph, per-op measured times and a measured makespan
``m``, the paper bounds the makespan from above by fully-serialized
execution (Eq. 1) and from below by perfect resource utilization (Eq. 2),
and scores the run by where ``m`` falls in that band (Eq. 3):

    E = (U - m) / (U - L)        E=1 perfect ordering, E=0 worst.

Eq. 4's *Speedup* is the width of the band relative to its floor — the
best-case gain an ideal schedule could deliver over the worst:

    S = (U - L) / L.

Both bounds deliberately ignore DAG dependencies (§3.2), so E is a
schedule-quality score rather than an achievability statement: L may be
unreachable when dependencies force idleness, and the paper's own runs
top out near — but below — 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, Union

import numpy as np

from ..graph import Graph, PartitionedGraph

TimesLike = Union[Mapping[int, float], Sequence[float], np.ndarray]


def _time_vector(graph: Graph, times: TimesLike) -> np.ndarray:
    if isinstance(times, Mapping):
        vec = np.zeros(len(graph))
        for op_id, t in times.items():
            vec[op_id] = t
    else:
        vec = np.asarray(times, dtype=float)
        if vec.shape != (len(graph),):
            raise ValueError(
                f"times vector has shape {vec.shape}, expected ({len(graph)},)"
            )
    if np.any(vec < 0):
        raise ValueError("negative op times")
    return vec


def upper_makespan(graph: Graph, times: TimesLike) -> float:
    """Eq. 1: fully serialized execution — Σ Time(op) over all ops."""
    return float(_time_vector(graph, times).sum())


def lower_makespan(partition: PartitionedGraph, times: TimesLike) -> float:
    """Eq. 2: perfect overlap — max over resources of that resource's load."""
    vec = _time_vector(partition.graph, times)
    best = 0.0
    for resource in partition.resources:
        load = float(sum(vec[op.op_id] for op in partition.ops_on(resource)))
        if load > best:
            best = load
    return best


@dataclass(frozen=True)
class EfficiencyReport:
    """E, S and the band they derive from, for one measured iteration."""

    makespan: float
    upper: float
    lower: float

    @property
    def efficiency(self) -> float:
        """Eq. 3. Degenerate bands (U == L: a single loaded resource) score
        1.0 — there is nothing scheduling could win or lose."""
        if self.upper == self.lower:
            return 1.0
        return (self.upper - self.makespan) / (self.upper - self.lower)

    @property
    def speedup(self) -> float:
        """Eq. 4: max theoretical gain of best over worst schedule."""
        if self.lower == 0.0:
            return 0.0
        return (self.upper - self.lower) / self.lower


def scheduling_efficiency(
    partition: PartitionedGraph, times: TimesLike, makespan: float
) -> EfficiencyReport:
    """Score one measured iteration (Eq. 1-4) from its per-op times."""
    if makespan < 0:
        raise ValueError("makespan must be non-negative")
    graph = partition.graph
    return EfficiencyReport(
        makespan=float(makespan),
        upper=upper_makespan(graph, times),
        lower=lower_makespan(partition, times),
    )


def theoretical_speedup(partition: PartitionedGraph, times: TimesLike) -> float:
    """Eq. 4 directly from a partition and an op-time assignment."""
    return scheduling_efficiency(partition, times, makespan=0.0).speedup
