"""Schedule persistence.

The paper's deployment computes the priority list offline, once per
(model, cluster shape), and ships it to the enforcement module of every
job. That implies a serialized artifact; this module defines it: a small
JSON document with the algorithm name, the priority table and provenance
metadata, versioned for forward compatibility.
"""

from __future__ import annotations

import json
import os
from typing import Union

from .schedules import Schedule

FORMAT_VERSION = 1


def schedule_to_dict(schedule: Schedule) -> dict:
    """Plain-dict form of a schedule (stable key order for diffing)."""
    return {
        "format_version": FORMAT_VERSION,
        "algorithm": schedule.algorithm,
        "priorities": {k: int(v) for k, v in sorted(schedule.priorities.items())},
        "meta": {
            k: v
            for k, v in schedule.meta.items()
            if isinstance(v, (str, int, float, bool)) or v is None
        },
    }


def schedule_from_dict(data: dict) -> Schedule:
    """Inverse of :func:`schedule_to_dict`; validates the envelope."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported schedule format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    if "algorithm" not in data or "priorities" not in data:
        raise ValueError("schedule document missing 'algorithm'/'priorities'")
    priorities = data["priorities"]
    if not all(isinstance(v, int) and v >= 0 for v in priorities.values()):
        raise ValueError("priorities must be non-negative integers")
    return Schedule(
        algorithm=str(data["algorithm"]),
        priorities=dict(priorities),
        meta=dict(data.get("meta", {})),
    )


def save_schedule(path: Union[str, os.PathLike], schedule: Schedule) -> str:
    """Write a schedule JSON document; returns the path."""
    path = os.fspath(path)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as fh:
        json.dump(schedule_to_dict(schedule), fh, indent=2, sort_keys=True)
    return path


def load_schedule(path: Union[str, os.PathLike]) -> Schedule:
    """Read a schedule JSON document written by :func:`save_schedule`."""
    with open(os.fspath(path)) as fh:
        return schedule_from_dict(json.load(fh))
