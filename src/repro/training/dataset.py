"""Synthetic classification data (the ImageNet stand-in for Fig. 8).

The paper trains Inception v3 on ImageNet to show that enforced transfer
ordering does not perturb learning (its Fig. 8 loss curves coincide), and
separately reports <3% iteration-time difference between real and synthetic
inputs. Since we cannot ship ImageNet, the numeric substrate trains on a
reproducible synthetic task: Gaussian class prototypes plus noise, which a
small network can make steady progress on — enough to exhibit a falling
loss curve whose trajectory can be compared bit-for-bit across transfer
orderings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SyntheticDataset:
    """Fixed synthetic dataset: ``x`` (n, d), integer labels ``y`` (n,)."""

    x: np.ndarray
    y: np.ndarray
    n_classes: int

    @property
    def n(self) -> int:
        return self.x.shape[0]

    @property
    def dim(self) -> int:
        return self.x.shape[1]

    def shard(self, worker: int, n_workers: int) -> "SyntheticDataset":
        """Deterministic round-robin shard for data parallelism."""
        if not 0 <= worker < n_workers:
            raise ValueError(f"worker {worker} out of range for {n_workers}")
        idx = np.arange(worker, self.n, n_workers)
        return SyntheticDataset(self.x[idx], self.y[idx], self.n_classes)

    def batches(self, batch_size: int, *, seed: int = 0):
        """Infinite shuffled batch iterator (deterministic in ``seed``)."""
        rng = np.random.default_rng(seed)
        while True:
            order = rng.permutation(self.n)
            for i in range(0, self.n - batch_size + 1, batch_size):
                sel = order[i : i + batch_size]
                yield self.x[sel], self.y[sel]


def make_dataset(
    n_samples: int = 4096,
    dim: int = 64,
    n_classes: int = 10,
    *,
    noise: float = 1.0,
    seed: int = 0,
) -> SyntheticDataset:
    """Gaussian prototype classification task.

    Each class has a random unit-norm prototype; samples are
    ``prototype + noise * N(0, I)``. ``noise=1`` keeps the task non-trivial
    so the loss curve has visible structure over hundreds of iterations.
    """
    if n_samples <= 0 or dim <= 0 or n_classes <= 1:
        raise ValueError("need n_samples > 0, dim > 0, n_classes > 1")
    rng = np.random.default_rng(seed)
    protos = rng.normal(size=(n_classes, dim))
    protos /= np.linalg.norm(protos, axis=1, keepdims=True)
    y = rng.integers(n_classes, size=n_samples)
    x = protos[y] + noise * rng.normal(size=(n_samples, dim))
    return SyntheticDataset(x=x.astype(np.float64), y=y, n_classes=n_classes)
