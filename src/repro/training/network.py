"""A small numpy MLP with per-tensor parameters (the numeric model whose
parameters play the role of the DNN's transferable tensors).

Parameters are held as an ordered dict of named tensors — mirroring how the
real system moves one tensor per transfer — so the data-parallel trainer
can receive/apply them in any order and demonstrate order-invariance.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

Params = dict[str, np.ndarray]


def init_params(
    dim: int, hidden: int, n_classes: int, *, seed: int = 0
) -> Params:
    """He-initialized two-layer MLP parameters."""
    rng = np.random.default_rng(seed)
    return {
        "fc1/weights": rng.normal(0, np.sqrt(2.0 / dim), size=(dim, hidden)),
        "fc1/biases": np.zeros(hidden),
        "fc2/weights": rng.normal(0, np.sqrt(2.0 / hidden), size=(hidden, n_classes)),
        "fc2/biases": np.zeros(n_classes),
    }


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def forward_loss(params: Mapping[str, np.ndarray], x: np.ndarray, y: np.ndarray) -> float:
    """Mean cross-entropy of the MLP on a batch."""
    h = np.maximum(x @ params["fc1/weights"] + params["fc1/biases"], 0.0)
    probs = _softmax(h @ params["fc2/weights"] + params["fc2/biases"])
    return float(-np.log(probs[np.arange(len(y)), y] + 1e-12).mean())


def gradients(params: Mapping[str, np.ndarray], x: np.ndarray, y: np.ndarray) -> tuple[float, Params]:
    """Loss and analytic gradients for one batch (plain backprop)."""
    n = len(y)
    a1 = x @ params["fc1/weights"] + params["fc1/biases"]
    h = np.maximum(a1, 0.0)
    logits = h @ params["fc2/weights"] + params["fc2/biases"]
    probs = _softmax(logits)
    loss = float(-np.log(probs[np.arange(n), y] + 1e-12).mean())
    dlogits = probs.copy()
    dlogits[np.arange(n), y] -= 1.0
    dlogits /= n
    grads: Params = {
        "fc2/weights": h.T @ dlogits,
        "fc2/biases": dlogits.sum(axis=0),
    }
    dh = dlogits @ params["fc2/weights"].T
    dh[a1 <= 0.0] = 0.0
    grads["fc1/weights"] = x.T @ dh
    grads["fc1/biases"] = dh.sum(axis=0)
    return loss, grads


def accuracy(params: Mapping[str, np.ndarray], x: np.ndarray, y: np.ndarray) -> float:
    h = np.maximum(x @ params["fc1/weights"] + params["fc1/biases"], 0.0)
    logits = h @ params["fc2/weights"] + params["fc2/biases"]
    return float((logits.argmax(axis=1) == y).mean())
