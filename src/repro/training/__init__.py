"""Numeric data-parallel training substrate (Fig. 8's accuracy check)."""

from .dataset import SyntheticDataset, make_dataset
from .network import Params, accuracy, forward_loss, gradients, init_params
from .trainer import (
    OrderingPolicy,
    TrainLog,
    baseline_ordering,
    enforced_ordering,
    train_data_parallel,
)

__all__ = [
    "SyntheticDataset",
    "make_dataset",
    "Params",
    "accuracy",
    "forward_loss",
    "gradients",
    "init_params",
    "OrderingPolicy",
    "TrainLog",
    "baseline_ordering",
    "enforced_ordering",
    "train_data_parallel",
]
