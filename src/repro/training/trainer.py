"""Numeric data-parallel SGD with a parameter server (Fig. 8's substrate).

Reproduces the paper's accuracy-preservation argument: TicTac only permutes
the order in which parameter tensors travel, never their values, so the
training trajectory is unchanged. The trainer makes the transfer order an
explicit, controllable step — each worker materializes its parameter copy
tensor-by-tensor in the ordering policy's sequence, and gradients are
shipped back in that sequence — so tests can assert *bit-identical* loss
curves between the random baseline order and an enforced TIC-style order.

Aggregation order at the PS is canonical (worker index), matching
synchronous TensorFlow's accumulator semantics of waiting for all W
gradients before applying; arrival order affects timing only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from .dataset import SyntheticDataset
from .network import Params, accuracy, gradients, init_params

#: Produces a tensor-name ordering for (worker, iteration).
OrderingPolicy = Callable[[int, int, list[str]], list[str]]


def baseline_ordering(seed: int = 0) -> OrderingPolicy:
    """Vanilla-TF behaviour: an arbitrary (random) order per worker per
    iteration — every worker sees a different permutation every step."""

    def policy(worker: int, iteration: int, names: list[str]) -> list[str]:
        rng = np.random.default_rng(np.random.SeedSequence((seed, worker, iteration)))
        return [names[i] for i in rng.permutation(len(names))]

    return policy


def enforced_ordering(order: Optional[Sequence[str]] = None) -> OrderingPolicy:
    """TicTac behaviour: one fixed order at every worker, every iteration.

    ``order`` defaults to definition order; pass
    ``schedule.order(param_names)`` to use a wizard-produced schedule.
    """
    fixed = list(order) if order is not None else None

    def policy(worker: int, iteration: int, names: list[str]) -> list[str]:
        if fixed is None:
            return list(names)
        missing = [n for n in names if n not in fixed]
        return [n for n in fixed if n in names] + missing

    return policy


@dataclass
class TrainLog:
    """Loss/accuracy trajectory of one training run."""

    label: str
    losses: list[float] = field(default_factory=list)
    eval_accuracy: float = float("nan")

    @property
    def loss_array(self) -> np.ndarray:
        return np.array(self.losses)


def train_data_parallel(
    dataset: SyntheticDataset,
    *,
    n_workers: int = 4,
    batch_size: int = 32,
    iterations: int = 500,
    lr: float = 0.2,
    hidden: int = 64,
    ordering: Optional[OrderingPolicy] = None,
    label: str = "run",
    seed: int = 0,
) -> TrainLog:
    """Synchronous Model-Replica SGD over ``n_workers`` data shards.

    Per iteration: each worker pulls the PS parameters (tensor order set by
    ``ordering``), computes gradients on its shard's next batch, pushes
    them back (same order); the PS averages all W gradients in canonical
    worker order and applies SGD. The recorded loss is the worker-mean
    pre-update batch loss, as TensorBoard would report.
    """
    if ordering is None:
        ordering = baseline_ordering(seed)
    ps_params: Params = init_params(dataset.dim, hidden, dataset.n_classes, seed=seed)
    names = list(ps_params)
    shards = [dataset.shard(w, n_workers) for w in range(n_workers)]
    streams = [
        shard.batches(batch_size, seed=seed * 1000 + w) for w, shard in enumerate(shards)
    ]
    log = TrainLog(label=label)
    for it in range(iterations):
        losses = []
        grad_store: list[Params] = []
        for w in range(n_workers):
            # --- pull: materialize the replica in transfer order --------
            recv_order = ordering(w, it, names)
            if sorted(recv_order) != sorted(names):
                raise ValueError("ordering policy must permute the tensor names")
            replica: Params = {}
            for name in recv_order:
                replica[name] = ps_params[name].copy()
            # --- local step ----------------------------------------------
            x, y = next(streams[w])
            loss, grads = gradients(replica, x, y)
            losses.append(loss)
            # The push order (same as recv_order in the real system)
            # affects timing only; aggregation below is canonical-order.
            grad_store.append(grads)
        for name in names:
            total = np.zeros_like(ps_params[name])
            for w in range(n_workers):
                total += grad_store[w][name]
            ps_params[name] = ps_params[name] - lr * (total / n_workers)
        log.losses.append(float(np.mean(losses)))
    log.eval_accuracy = accuracy(ps_params, dataset.x, dataset.y)
    return log
