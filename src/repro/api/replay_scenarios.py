"""Replay scenarios: trace-driven cluster studies as registry entries.

A :class:`ReplayScenario` is the declarative surface of the replay
subsystem (:mod:`repro.replay`): one synthetic trace spec, one shared
cluster, and the scheduling modes to replay the *same* trace under.
The ``replay`` analysis callback generates the trace from the run's
seed, replays it once per mode through the epoch scheduler (rate cells
ride the context's shared sweep runner, so they hit the same disk cache
and quarantine machinery as every sweep), and streams per-job rows into
a chunked CSV sink next to the primary output — the summary table is
computed *incrementally* by the sink's aggregate, so a million-row
replay never holds its rows.

The committed study:

* ``cluster_day`` — a synthetic day (86400 s) of 1000 jobs on a
  16-slot cluster, replayed under no scheduling (``baseline``), uniform
  TIC, uniform TAC, and per-job dispatch (``mix`` — each job keeps the
  algorithm it asked for). Per-job JCT/queueing-delay rows land in
  ``cluster_day_jobs.csv``; the per-mode makespan/JCT-percentile/
  fairness/utilization summary is the primary ``cluster_day.csv``.
  Replay rates are scale-independent (single-iteration compositions),
  so the committed CSVs regenerate identically at ``--quick`` — CI
  drift-gates them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..core.wizard import ALGORITHMS
from ..replay.admission import get_admission
from ..replay.aggregate import ReplayAggregate
from ..replay.engine import JOB_COLUMNS, ReplayCluster, ReplayError, replay
from ..replay.sink import CsvChunkSink
from ..replay.trace import SyntheticTraceSpec, generate_trace
from .engine import ScenarioRun
from .registry import register_analysis, register_scenario
from .resultset import Report
from .scenario import Scenario
from .scenarios import render_rows


@dataclass(frozen=True)
class ReplayScenario:
    """Declarative description of one trace-replay study.

    ``modes`` are replayed in order over the identical trace: the
    sentinel ``"mix"`` dispatches each job to its own trace algorithm;
    any wizard algorithm name applies uniformly. ``chunk_rows`` sets the
    sink's commit granularity (rows per fsync'd chunk).
    """

    trace: SyntheticTraceSpec
    cluster: ReplayCluster
    modes: tuple[str, ...] = ("baseline", "mix")
    admission: str = "fifo"
    chunk_rows: int = 256

    def __post_init__(self) -> None:
        if not self.modes:
            raise ReplayError("modes must name at least one replay mode")
        for mode in self.modes:
            if mode != "mix" and mode not in ALGORITHMS:
                raise ReplayError(
                    f"unknown replay mode {mode!r}; 'mix' or one of "
                    f"{ALGORITHMS}"
                )
        if len(set(self.modes)) != len(self.modes):
            raise ReplayError(f"duplicate replay modes in {self.modes!r}")
        get_admission(self.admission)  # fail fast with did-you-mean hints
        if self.chunk_rows <= 0:
            raise ReplayError(
                f"chunk_rows must be positive, got {self.chunk_rows}"
            )


@register_analysis("replay")
def _replay(run: ScenarioRun) -> Report:
    rp: ReplayScenario = run.param("replay")
    traces = generate_trace(rp.trace, seed=run.seed)
    jobs_stem = f"{run.scenario.output}_jobs"
    jobs_path = os.path.join(run.ctx.results_dir, f"{jobs_stem}.csv")
    aggregate = ReplayAggregate(rp.cluster.total_slots)
    sink = CsvChunkSink(
        jobs_path, JOB_COLUMNS, chunk_rows=rp.chunk_rows, aggregate=aggregate
    )
    stats = []
    try:
        for mode in rp.modes:
            res = replay(
                traces,
                rp.cluster,
                runner=run.sweep,
                algorithm=mode,
                admission=rp.admission,
                config=run.sim_config(),
                sink=sink,
                log=run.log,
            )
            run.log(
                f"  replay {mode}: {res.done}/{res.jobs} jobs in "
                f"{res.epochs} epochs ({res.compositions} compositions, "
                f"queue peak {res.queue_peak})"
            )
            stats.append({
                "algorithm": res.label,
                "admission": res.admission,
                "jobs": res.jobs,
                "done": res.done,
                "quarantined": len(res.quarantined),
                "epochs": res.epochs,
                "compositions": res.compositions,
                "rate_fallbacks": res.rate_fallbacks,
                "jobs_waited": res.queued,
                "queue_peak": res.queue_peak,
            })
    finally:
        info = sink.close()
    # scenario runs are one-shot (the standalone ``tictac-repro replay``
    # command owns crash-resume), so drop the manifest sidecar and keep
    # the results directory to the committed CSVs.
    os.remove(sink.manifest_path)
    run.sweep.telemetry.add("replay_sink_rows", info["rows"])
    run.sweep.telemetry.add("replay_sink_chunks", info["chunks"])
    rows = aggregate.summary_rows()
    text = (
        render_rows(rows, run.scenario.title)
        + "\n"
        + render_rows(stats, "replay run stats (per mode)")
    )
    stats_name = f"{run.scenario.output}_stats"
    return Report(
        rows=rows,
        text=text,
        tables={stats_name: stats},
        extras={"jobs_csv": jobs_path},
    )


# ======================================================================
# Registered studies
# ======================================================================

#: A day of a 1000-job cluster: Poisson arrivals over 24 h, the paper's
#: two headline envC models, jobs asking for TIC or TAC 50/50, fixed
#: 2 workers + 1 PS shapes (3 slots) on a 16-slot cluster — at most five
#: jobs run concurrently, which keeps the distinct-composition count
#: (the number of jobmix simulations actually run) around 10^2 while the
#: day still sees ~78% slot utilization and real queueing.
CLUSTER_DAY_TRACE = SyntheticTraceSpec(
    n_jobs=1000,
    horizon_s=86400.0,
    arrival="poisson",
    models=(("AlexNet v2", 0.6), ("Inception v1", 0.4)),
    algorithms=(("tic", 0.5), ("tac", 0.5)),
    workers=((2, 1.0),),
    n_ps=1,
    iterations=(16, 48),
)

CLUSTER_DAY = ReplayScenario(
    trace=CLUSTER_DAY_TRACE,
    cluster=ReplayCluster(
        n_hosts=8, slots_per_host=2, placement="packed", platform="envC"
    ),
    modes=("baseline", "tic", "tac", "mix"),
    admission="fifo",
)

register_scenario(Scenario(
    name="cluster_day",
    title="Cluster day: 1000-job trace replay, baseline vs TIC/TAC (envC)",
    output="cluster_day",
    analyze="replay",
    backends=("jobmix",),
    platforms=("envC",),
    models=("AlexNet v2", "Inception v1"),
    algorithms=("baseline", "tic", "tac"),
    aux_outputs=("cluster_day_jobs", "cluster_day_stats"),
    extras_csv=(("stats_csv", "cluster_day_stats"),),
    params=(("replay", CLUSTER_DAY),),
    tags=("replay", "jobmix", "extension"),
))
