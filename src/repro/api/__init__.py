"""repro.api — the stable programmatic facade over the whole pipeline.

Three nouns:

* :class:`Session` — owns execution (scale, worker pool, shared cores,
  on-disk sweep cache); a context manager.
* :class:`Scenario` — a declarative, registry-validated description of a
  study: backends x models x workers x algorithms x SimConfig knobs,
  plus a named analysis callback. The built-in registry covers every
  table/figure of the paper (``repro.api.scenario_names()``).
* :class:`ResultSet` — typed results: rows + schema + provenance
  (engine revision, kernel, cache hits), with ``to_csv``/``to_table``/
  ``frame``. Results are values; persistence is explicit.

Quick start::

    from repro.api import Session

    with Session(scale="quick") as session:
        rs = session.run("fig7")
        print(rs.to_table())
        rs.to_csv("results")

Extending: define callbacks with :func:`register_analysis`, register
:class:`Scenario` objects with :func:`register_scenario`, and they are
immediately runnable by name — from :class:`Session` and from the
``tictac-repro`` CLI alike.
"""

from .context import (
    FIG7_MODELS,
    FULL,
    QUICK,
    QUICK_MODELS,
    SCALES,
    Context,
    Scale,
    make_context,
)
from .engine import ScenarioRun, execute_scenario
from .jobmix_scenarios import JobMixScenario

# Deliberately after jobmix_scenarios (whose import pulls the built-in
# scenarios in): registration order is presentation order, and the
# replay studies come last.
from .replay_scenarios import ReplayScenario
from .registry import (
    UnknownAnalysisError,
    UnknownScenarioError,
    analysis,
    analysis_names,
    iter_scenarios,
    register_analysis,
    register_scenario,
    scenario,
    scenario_names,
)
from .resultset import Provenance, Report, ResultSet
from .scenario import Grid, Scenario, ScenarioError
from .session import Session

__all__ = [
    "Context",
    "FIG7_MODELS",
    "FULL",
    "Grid",
    "JobMixScenario",
    "Provenance",
    "QUICK",
    "QUICK_MODELS",
    "ReplayScenario",
    "Report",
    "ResultSet",
    "SCALES",
    "Scale",
    "Scenario",
    "ScenarioError",
    "ScenarioRun",
    "Session",
    "UnknownAnalysisError",
    "UnknownScenarioError",
    "analysis",
    "analysis_names",
    "execute_scenario",
    "iter_scenarios",
    "make_context",
    "register_analysis",
    "register_scenario",
    "scenario",
    "scenario_names",
]
