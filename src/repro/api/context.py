"""Execution context and scale protocol for scenario runs.

Every scenario runs at one of two scales:

* ``quick`` (default) — a representative subset sized for CI / the
  benchmark suite: fewer models, fewer worker counts, fewer iterations.
* ``full`` — the paper's protocol (all models, workers 1..16, 10 recorded
  iterations after 2 warm-up, 1000-run consistency study). Select with
  ``REPRO_SCALE=full`` or ``--full`` on the CLI.

:class:`Context` owns the shared :class:`~repro.sweep.SweepRunner`
(worker pool, shared cores, on-disk result cache) for one run of one or
more scenarios. :class:`~repro.api.Session` is the public facade over it;
the legacy ``repro.experiments.common`` module re-exports everything here
for backward compatibility.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from ..sim import SimConfig
from ..sweep import SweepRunner

#: Fig. 7's model set (the paper's nine; Table 1 lists ten — ResNet-101 v2
#: appears only in Table 1).
FIG7_MODELS: tuple[str, ...] = (
    "Inception v1",
    "VGG-19",
    "Inception v2",
    "AlexNet v2",
    "VGG-16",
    "ResNet-50 v1",
    "ResNet-50 v2",
    "Inception v3",
    "ResNet-101 v1",
)

QUICK_MODELS: tuple[str, ...] = (
    "Inception v1",
    "AlexNet v2",
    "VGG-16",
    "ResNet-50 v1",
)


@dataclass(frozen=True)
class Scale:
    """Knobs that differ between quick and full runs."""

    name: str
    models: tuple[str, ...]
    worker_counts: tuple[int, ...]
    ps_counts: tuple[int, ...]
    iterations: int
    warmup: int
    consistency_runs: int  # Fig. 12's run count
    loss_iterations: int  # Fig. 8's SGD steps


QUICK = Scale(
    name="quick",
    models=QUICK_MODELS,
    worker_counts=(2, 4, 8),
    ps_counts=(1, 2),
    iterations=4,
    warmup=1,
    consistency_runs=80,
    loss_iterations=150,
)

FULL = Scale(
    name="full",
    models=FIG7_MODELS,
    worker_counts=(1, 2, 4, 8, 16),
    ps_counts=(1, 2, 4),
    iterations=10,
    warmup=2,
    consistency_runs=1000,
    loss_iterations=500,
)

#: Named scales a :class:`~repro.api.Session` accepts.
SCALES: dict[str, Scale] = {"quick": QUICK, "full": FULL}


@dataclass
class Context:
    """Execution context every scenario runs against.

    ``jobs``/``use_cache``/``rerun`` configure the shared
    :class:`~repro.sweep.SweepRunner` every scenario submits its grid to:
    ``jobs`` fans cells out across processes, the cache (default
    ``<results_dir>/.sweep-cache``) lets re-runs and overlapping scenarios
    skip already-simulated cells, and ``rerun`` forces recomputation.
    """

    scale: Scale = field(default_factory=lambda: QUICK)
    results_dir: str = "results"
    seed: int = 0
    verbose: bool = True
    jobs: int = 1
    use_cache: bool = True
    rerun: bool = False
    cache_dir: Optional[str] = None
    #: size cap (MiB) for the sweep cache; ``None`` keeps entries forever.
    #: Enforced by :meth:`gc_cache` after a CLI run (LRU eviction).
    cache_max_mb: Optional[float] = None
    _sweep: Optional[SweepRunner] = field(
        default=None, repr=False, compare=False
    )

    @property
    def sweep(self) -> SweepRunner:
        """The lazily-created sweep runner shared by this context."""
        if self._sweep is None:
            cache_dir = None
            if self.use_cache:
                cache_dir = self.cache_dir or os.path.join(
                    self.results_dir, ".sweep-cache"
                )
            self._sweep = SweepRunner(
                jobs=self.jobs, cache_dir=cache_dir, rerun=self.rerun
            )
        return self._sweep

    def close(self) -> None:
        """Release the sweep runner's pool and shared-memory cores.

        The CLI and :class:`~repro.api.Session` call this from a
        ``finally``/``__exit__`` so published ``CompiledCore`` blocks
        never outlive the run (the runner's own ``atexit`` hook is the
        backstop for embedders that skip it)."""
        runner, self._sweep = self._sweep, None
        if runner is not None:
            runner.close()

    def gc_cache(self) -> Optional[dict]:
        """Apply the ``cache_max_mb`` cap to the on-disk sweep cache
        (no-op when no cap is configured).

        Operates on the cache directory directly, so an explicitly
        requested eviction works even when this run did not use the cache
        (``--no-cache`` / ``REPRO_NO_CACHE=1``).
        """
        if self.cache_max_mb is None:
            return None
        if self.use_cache:
            runner = self.sweep
        else:  # --no-cache run: point a throwaway runner at the directory
            cache_dir = self.cache_dir or os.path.join(
                self.results_dir, ".sweep-cache"
            )
            runner = SweepRunner(cache_dir=cache_dir)
        summary = runner.gc_cache(self.cache_max_mb)
        if summary is None:  # pragma: no cover - runner without a cache dir
            return None
        self.log(
            f"sweep cache gc: removed {summary['entries_removed']} "
            f"entries ({summary['bytes_removed'] / 2**20:.1f} MiB), "
            f"kept {summary['entries_kept']} "
            f"({summary['bytes_kept'] / 2**20:.1f} MiB <= "
            f"{self.cache_max_mb:.0f} MiB cap)"
        )
        return summary

    def sim_config(self, **overrides) -> SimConfig:
        base = dict(
            seed=self.seed,
            iterations=self.scale.iterations,
            warmup=self.scale.warmup,
        )
        base.update(overrides)
        return SimConfig(**base)

    def log(self, message: str) -> None:
        if self.verbose:
            print(message, flush=True)


def make_context(
    full: Optional[bool] = None,
    results_dir: str = "results",
    jobs: Optional[int] = None,
    **kwargs,
) -> Context:
    """Build a context; ``full=None`` consults ``REPRO_SCALE``/``REPRO_FULL``,
    ``jobs=None`` consults ``REPRO_JOBS`` (default 1),
    ``REPRO_NO_CACHE=1`` disables the sweep cache, and
    ``REPRO_CACHE_MAX_MB`` caps its size (LRU eviction after each run)."""
    if full is None:
        env = os.environ.get("REPRO_SCALE", "").lower()
        full = env == "full" or os.environ.get("REPRO_FULL", "") == "1"
    if jobs is None:
        jobs = int(os.environ.get("REPRO_JOBS", "1"))
    if "use_cache" not in kwargs and os.environ.get("REPRO_NO_CACHE", "") == "1":
        kwargs["use_cache"] = False
    if "cache_max_mb" not in kwargs and os.environ.get("REPRO_CACHE_MAX_MB"):
        kwargs["cache_max_mb"] = float(os.environ["REPRO_CACHE_MAX_MB"])
    return Context(
        scale=FULL if full else QUICK, results_dir=results_dir, jobs=jobs, **kwargs
    )
