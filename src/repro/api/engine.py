"""The one generic scenario executor.

Every scenario — paper figure, table, or extension study — runs through
:func:`execute_scenario`:

1. bind parameters (defaults + caller overrides, validated);
2. if the scenario declares a :class:`~repro.api.scenario.Grid`, resolve
   it against the context's scale and sweep it (speedup pairs or plain
   cells) on the context's shared :class:`~repro.sweep.SweepRunner`;
3. hand the :class:`ScenarioRun` to the scenario's named analysis
   callback, which returns the tables/text/extras;
4. wrap everything in a :class:`~repro.api.resultset.ResultSet` with
   provenance (engine revision, event-loop kernel, scale, seed, cache
   hit/miss deltas, wall time).

The legacy per-driver ``run(ctx)`` functions are deprecation shims over
this function; the CLI is a loop over it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Union

from ..obs.telemetry import memo_counters
from ..sim.engine import ENGINE_REV
from ..sim.kernel import resolve as resolve_kernel
from ..sim.metrics import SimulationResult
from ..sweep.runner import Speedup
from ..sweep.spec import SimCell
from . import registry
from .context import Context
from .resultset import Provenance, Report, ResultSet
from .scenario import Scenario


@dataclass
class ScenarioRun:
    """Everything an analysis callback may touch: the execution context
    (scale, seed, sweep runner, logging), the scenario with its bound
    parameters, and — for grid scenarios — the resolved cells with their
    sweep results."""

    ctx: Context
    scenario: Scenario
    params: dict
    cells: list[SimCell] = field(default_factory=list)
    #: populated when ``grid.compare_baseline`` (one per cell) ...
    speedups: Optional[list[Speedup]] = None
    #: ... or plain results otherwise (also one per cell).
    results: Optional[list[SimulationResult]] = None

    @property
    def scale(self):
        return self.ctx.scale

    @property
    def sweep(self):
        return self.ctx.sweep

    @property
    def seed(self) -> int:
        return self.ctx.seed

    def sim_config(self, **overrides):
        return self.ctx.sim_config(**overrides)

    def log(self, message: str) -> None:
        self.ctx.log(message)

    def param(self, name: str):
        return self.params[name]


def _quarantined_row(cell, error: str) -> dict:
    """A tidy row identifying one quarantined cell: the coordinates plus
    the bound parameter values (cluster shape, workload, batch factor,
    seed) that distinguish it from its grid siblings — without them a
    replay/sweep log's quarantine report cannot say *which* cell died."""
    spec = getattr(cell, "spec", None)
    config = getattr(cell, "config", None)
    return {
        "model": getattr(cell, "model", ""),
        "algorithm": getattr(cell, "algorithm", ""),
        "platform": getattr(cell, "platform", ""),
        "workers": getattr(spec, "n_workers", ""),
        "ps": getattr(spec, "n_ps", ""),
        "workload": getattr(spec, "workload", ""),
        "placement": getattr(spec, "placement", ""),
        "batch_factor": getattr(cell, "batch_factor", ""),
        "seed": getattr(config, "seed", ""),
        "error": error,
    }


def execute_scenario(
    ctx: Context, scenario: Union[str, Scenario], /, **overrides
) -> ResultSet:
    """Run one scenario against ``ctx`` and return its ResultSet (no CSV
    is written — call :meth:`~repro.api.resultset.ResultSet.to_csv` /
    ``save`` for that)."""
    if isinstance(scenario, str):
        scenario = registry.scenario(scenario)
    t0 = time.perf_counter()
    params = scenario.bind(**overrides)
    stats_before = ctx.sweep.stats.as_dict()
    telemetry_before = ctx.sweep.telemetry.as_dict()
    memo_before = memo_counters()
    quarantine_before = len(getattr(ctx.sweep, "quarantined", ()))

    run = ScenarioRun(ctx=ctx, scenario=scenario, params=params)
    if scenario.grid is not None:
        run.cells = scenario.grid.resolve(ctx.scale, params, ctx.sim_config)
        if scenario.grid.compare_baseline:
            run.speedups = ctx.sweep.run_speedups(run.cells)
        else:
            run.results = ctx.sweep.run_cells(run.cells)

    report: Report = registry.analysis(scenario.analyze)(run)

    stats_after = ctx.sweep.stats.as_dict()
    # telemetry delta for this scenario: runner counters, on-disk cache
    # activity and the driver process's memo hits (see repro.obs.telemetry)
    telemetry = ctx.sweep.telemetry.delta_since(telemetry_before)
    for name, value in stats_after.items():
        d = value - stats_before[name]
        if d:
            telemetry[f"cache_{name}"] = float(d)
    for name, value in memo_counters().items():
        d = value - memo_before.get(name, 0.0)
        if d:
            telemetry[name] = d
    telemetry = dict(sorted(telemetry.items()))
    # Resolve the kernel the run's SimConfigs actually selected: grid
    # scenarios carry it on their cells (a sim=(('kernel', ...),) override
    # is honoured); callback-built cells share ctx.sim_config's default.
    configured_kernel = (
        run.cells[0].config.kernel if run.cells else ctx.sim_config().kernel
    )
    provenance = Provenance(
        scenario=scenario.name,
        scale=ctx.scale.name,
        seed=ctx.seed,
        jobs=ctx.jobs,
        engine_rev=ENGINE_REV,
        kernel=resolve_kernel(configured_kernel),
        backends=scenario.backends,
        cache={k: stats_after[k] - stats_before[k] for k in stats_after},
        elapsed_s=time.perf_counter() - t0,
    )
    extras = dict(report.extras)
    # cells the resilient runner gave up on during THIS scenario: tidy
    # error rows so partial sweeps are inspectable instead of silent.
    lost = list(getattr(ctx.sweep, "quarantined", ()))[quarantine_before:]
    if lost:
        extras["quarantined"] = [_quarantined_row(cell, error) for cell, error in lost]
    result = ResultSet(
        name=scenario.output,
        scenario=scenario,
        rows=report.rows,
        text=report.text,
        tables=dict(report.tables),
        extras=extras,
        provenance=provenance,
        telemetry=telemetry,
    )
    ctx.log(report.text)
    ctx.log(
        f"[{scenario.output}] {len(result.rows)} rows "
        f"({provenance.elapsed_s:.1f}s)"
    )
    return result
