"""The scenario registry: names -> declarative scenario definitions.

Two registries live here:

* **scenarios** — :class:`~repro.api.scenario.Scenario` objects by name,
  in presentation order (the order ``tictac-repro all`` runs). The
  built-in definitions in :mod:`repro.api.scenarios` load lazily on
  first lookup; third-party code extends the set with
  :func:`register_scenario`.
* **analyses** — named post-processing callbacks
  (``Callable[[ScenarioRun], Report]``). A scenario references its
  callback *by name* so scenario objects stay declarative data; the
  callback owns whatever per-scenario work is not expressible as a grid
  (Fig. 12's consistency statistics, the all-reduce analytic-bound
  check, Table 1's model census, ...).

Unknown names raise :class:`UnknownScenarioError` /
:class:`UnknownAnalysisError` with near-match suggestions — the CLI
surfaces these verbatim.
"""

from __future__ import annotations

import difflib
from typing import TYPE_CHECKING, Callable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .scenario import Scenario

_SCENARIOS: dict[str, "Scenario"] = {}
_ANALYSES: dict[str, Callable] = {}
_defaults_loaded = False


class UnknownScenarioError(KeyError):
    """Lookup of a scenario name that is not registered."""

    def __init__(self, name: str, known: tuple[str, ...]):
        hints = difflib.get_close_matches(name, known, n=3, cutoff=0.4)
        message = (
            f"unknown scenario {name!r}; available: {', '.join(known)}"
        )
        if hints:
            message += f" — did you mean {' or '.join(map(repr, hints))}?"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError would repr-quote the message
        return self.args[0]


class UnknownAnalysisError(KeyError):
    """A scenario referenced an analysis callback that is not registered."""

    def __init__(self, name: str, known: tuple[str, ...]):
        hints = difflib.get_close_matches(name, known, n=3, cutoff=0.4)
        message = (
            f"unknown analysis callback {name!r}; registered: "
            f"{', '.join(sorted(known))}"
        )
        if hints:
            message += f" — did you mean {' or '.join(map(repr, hints))}?"
        super().__init__(message)

    def __str__(self) -> str:
        return self.args[0]


def _ensure_defaults() -> None:
    global _defaults_loaded
    if _defaults_loaded:
        return
    _defaults_loaded = True  # set first: the imports below re-enter us
    from . import scenarios  # noqa: F401 — registers the built-ins
    from . import jobmix_scenarios  # noqa: F401 — multi-job studies
    # replay_scenarios is imported by repro.api.__init__ AFTER the two
    # above finish (importing it here would execute it mid-scenarios
    # import and put cluster_day ahead of the built-ins); every path to
    # this registry runs the package __init__ first, so it is always
    # registered by the time a lookup happens.


# ----------------------------------------------------------------------
# Analysis callbacks
# ----------------------------------------------------------------------

def register_analysis(name: str) -> Callable[[Callable], Callable]:
    """Decorator: register a named analysis callback.

    The callback receives a :class:`~repro.api.engine.ScenarioRun` and
    returns a :class:`~repro.api.resultset.Report`. Later registrations
    replace earlier ones (deliberate overrides only).
    """

    def register(fn: Callable) -> Callable:
        _ANALYSES[name] = fn
        return fn

    return register


def analysis(name: str) -> Callable:
    """Look an analysis callback up by name."""
    _ensure_defaults()
    try:
        return _ANALYSES[name]
    except KeyError:
        raise UnknownAnalysisError(name, tuple(_ANALYSES)) from None


def has_analysis(name: str) -> bool:
    """Registration check used by ``Scenario`` validation. Loads the
    built-in callbacks first so a fresh process can reference them —
    safe while :mod:`repro.api.scenarios` is itself mid-import
    (callbacks register above their scenarios, and ``_ensure_defaults``
    flips its flag before importing, so the re-entrant call no-ops)."""
    _ensure_defaults()
    return name in _ANALYSES


def analysis_names() -> tuple[str, ...]:
    _ensure_defaults()
    return tuple(sorted(_ANALYSES))


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------

def register_scenario(sc: "Scenario") -> "Scenario":
    """Register a scenario under its name (re-registration replaces, so a
    tweaked variant can shadow a built-in). Returns it for chaining."""
    _SCENARIOS[sc.name] = sc
    return sc


def scenario(name: str) -> "Scenario":
    """Look a scenario up by name; unknown names raise
    :class:`UnknownScenarioError` with near-match suggestions."""
    _ensure_defaults()
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise UnknownScenarioError(name, tuple(_SCENARIOS)) from None


def scenario_names() -> tuple[str, ...]:
    """All registered scenario names, in registration (presentation)
    order — the order ``tictac-repro all`` executes."""
    _ensure_defaults()
    return tuple(_SCENARIOS)


def iter_scenarios() -> Iterator["Scenario"]:
    _ensure_defaults()
    yield from _SCENARIOS.values()
