"""The built-in scenario registry: every table/figure as data.

Each legacy ``repro.experiments.<driver>`` module collapsed into (a) a
:class:`~repro.api.scenario.Scenario` definition here — declarative axes
validated against the backend/platform/model/algorithm registries — and
(b) a named analysis callback that turns sweep results into the
scenario's tables. Grid-shaped studies (Fig. 7/9/10/11/13, the headline
scan) declare a :class:`~repro.api.scenario.Grid` the generic engine
expands and sweeps; irregular studies (Fig. 12's consistency statistics,
the ablation matrix, the all-reduce analytic-bound check, ...) build
their cells/tasks inside the callback against the same shared sweep
runner. Either way the cells, row assembly and rounding are identical to
the legacy drivers, so every ``results/*.csv`` regenerates byte-for-byte
through this path.

Module-level task functions (``model_characteristics``,
``training_run``, ...) are sweep :class:`~repro.sweep.spec.FnTask`
targets and must stay importable by worker processes.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..analysis import (
    empirical_cdf,
    format_table,
    linear_regression,
    normalized_step_time,
    percentile,
    scatter_sketch,
)
from ..backends import make_spec
from ..core.comparator import precedes_as_printed
from ..core.tac import tac
from ..models import ENVC_MODEL_NAMES, PAPER_TABLE_1, build_model, op_counts
from ..models import emit_graph
from ..models.emit import WORKER_INFERENCE, WORKER_TRAINING
from ..ps import ClusterSpec, build_cluster_graph, build_reference_partition, shard_parameters
from ..sim import CompiledCore, SimConfig, SimVariant, simulate_cluster, simulate_pipelined
from ..sweep import FnTask, SimCell
from ..sweep.spec import ps_for_workers
from ..timing import ENV_G, PerturbedOracle, estimate_time_oracle, get_platform
from ..training import (
    baseline_ordering,
    enforced_ordering,
    make_dataset,
    train_data_parallel,
)
from .engine import ScenarioRun
from .registry import register_analysis, register_scenario
from .resultset import Report
from .scenario import Grid, Scenario


def render_rows(rows, title: str, **kw) -> str:
    return format_table(rows, title=title, **kw)


# ======================================================================
# Table 1 — DNN model characteristics, ours vs. the paper
# ======================================================================

def model_characteristics(name: str) -> dict:
    """Build one model and report Table 1's structural quantities
    (a cacheable/parallelizable sweep task — model IR construction is the
    expensive part of this scenario)."""
    ir = build_model(name)
    inf, tr = op_counts(ir)
    return {
        "params": ir.n_param_tensors,
        "size_mib": ir.total_param_mib,
        "ops_inf": inf,
        "ops_train": tr,
        "batch": ir.batch_size,
    }


@register_analysis("table1")
def _table1(run: ScenarioRun) -> Report:
    names = list(PAPER_TABLE_1)
    tasks = [FnTask.make(model_characteristics, name=name) for name in names]
    rows = []
    for name, char in zip(names, run.sweep.run_tasks(tasks)):
        ref = PAPER_TABLE_1[name]
        inf, tr = char["ops_inf"], char["ops_train"]
        rows.append(
            {
                "model": name,
                "params": char["params"],
                "params_paper": ref.n_params,
                "size_mib": round(char["size_mib"], 2),
                "size_mib_paper": ref.param_mib,
                "ops_inf": inf,
                "ops_inf_paper": ref.ops_inference,
                "ops_inf_delta_pct": round(100 * (inf - ref.ops_inference) / ref.ops_inference, 1),
                "ops_train": tr,
                "ops_train_paper": ref.ops_training,
                "ops_train_delta_pct": round(100 * (tr - ref.ops_training) / ref.ops_training, 1),
                "batch": char["batch"],
            }
        )
    text = render_rows(rows, "Table 1: DNN model characteristics (ours vs paper)")
    return Report(rows=rows, text=text)


# ======================================================================
# §2.2 motivation — how random is the transfer order?
# ======================================================================

#: The three models §2.2 reports order-uniqueness for.
MOTIVATION_MODELS = ("ResNet-50 v2", "Inception v3", "VGG-16")
PAPER_UNIQUE = {"ResNet-50 v2": 1000, "Inception v3": 1000, "VGG-16": 493}


def count_unique_orders(model: str, iterations: int, seed: int = 0) -> int:
    """Distinct parameter-arrival orders at worker:0 across iterations."""
    ir = build_model(model)
    cluster = build_cluster_graph(ir, ClusterSpec(2, 1, "training"))
    sim = SimVariant(CompiledCore(cluster, ENV_G), None, SimConfig(seed=seed, iterations=1))
    recvs = cluster.param_recvs["worker:0"]
    op_ids = np.array(list(recvs.values()))
    seen: set[tuple] = set()
    # stream the 1000-iteration protocol (slabbed batch setup inside)
    for record in sim.iter_iterations(0, iterations):
        order = tuple(np.argsort(record.start[op_ids], kind="stable").tolist())
        seen.add(order)
    return len(seen)


@register_analysis("motivation")
def _motivation(run: ScenarioRun) -> Report:
    iterations = min(run.scale.consistency_runs, 1000)
    tasks = [
        FnTask.make(
            count_unique_orders, model=model, iterations=iterations, seed=run.seed
        )
        for model in MOTIVATION_MODELS
    ] + [FnTask.make(model_characteristics, name="ResNet-152 v2")]
    *uniques, r152 = run.sweep.run_tasks(tasks)
    rows = []
    for model, unique in zip(MOTIVATION_MODELS, uniques):
        rows.append(
            {
                "model": model,
                "iterations": iterations,
                "unique_orders": unique,
                "paper_unique_of_1000": PAPER_UNIQUE[model],
            }
        )
        run.log(f"  motivation {model}: {unique}/{iterations} unique orders")

    # The §2.2 sizing example.
    rows.append(
        {
            "model": "ResNet-152 v2 (sizing)",
            "iterations": 0,
            "unique_orders": r152["params"],
            "paper_unique_of_1000": 363,
        }
    )
    text = "\n".join(
        [
            render_rows(
                rows,
                f"Motivation (§2.2): distinct parameter-arrival orders over "
                f"{iterations} baseline iterations",
            ),
            f"ResNet-v2-152 sizing: {r152['params']} tensors "
            f"(paper: 363), {r152['size_mib']:.1f} MiB (paper: 229.5), "
            f"{r152['ops_train']} training ops (paper: 4655).",
        ]
    )
    return Report(rows=rows, text=text)


# ======================================================================
# Fig. 7 — throughput speedup vs. number of workers (envG)
# ======================================================================

#: Fig. 7's slice of the evaluation grid. The headline scan declares the
#: SAME grid, so their cells cache-hit each other.
FIG7_GRID = Grid(
    models="scale",
    workloads=("inference", "training"),
    workers="scale",
    ps="ratio",
    algorithms=("$algorithm",),
    platforms=("envG",),
)


@register_analysis("fig7")
def _fig7(run: ScenarioRun) -> Report:
    algorithm = run.param("algorithm")
    rows = []
    for cell, (gain, sched, base) in zip(run.cells, run.speedups):
        rows.append(
            {
                "model": cell.model,
                "workload": cell.spec.workload,
                "workers": cell.spec.n_workers,
                "ps": cell.spec.n_ps,
                "baseline_sps": round(base.throughput, 1),
                f"{algorithm}_sps": round(sched.throughput, 1),
                "speedup_pct": round(gain, 1),
            }
        )
        run.log(
            f"  fig7 {cell.model} {cell.spec.workload} "
            f"w{cell.spec.n_workers}ps{cell.spec.n_ps}: {gain:+.1f}%"
        )
    text = render_rows(
        rows,
        f"Fig. 7: throughput speedup of {algorithm.upper()} vs baseline, "
        "scaling workers (envG, PS:W = 1:4)",
    )
    return Report(rows=rows, text=text)


# ======================================================================
# Fig. 8 — training loss with and without enforced ordering
# ======================================================================

def training_run(ordering: str, iterations: int, seed: int) -> dict:
    """One Fig. 8 SGD run as a cacheable sweep task. The dataset is
    rebuilt from ``seed``, so both orderings train on identical data."""
    ds = make_dataset(seed=seed)
    policy = (
        baseline_ordering(seed) if ordering == "no_ordering" else enforced_ordering()
    )
    log = train_data_parallel(
        ds, iterations=iterations, ordering=policy, label=ordering, seed=seed
    )
    return {
        "losses": [float(x) for x in log.losses],
        "accuracy": float(log.eval_accuracy),
    }


@register_analysis("fig8")
def _fig8(run: ScenarioRun) -> Report:
    iters = run.scale.loss_iterations
    labels = ("no_ordering", "tic")
    tasks = [
        FnTask.make(training_run, ordering=label, iterations=iters, seed=run.seed)
        for label in labels
    ]
    runs = dict(zip(labels, run.sweep.run_tasks(tasks)))
    identical = bool(
        np.array_equal(
            np.array(runs["no_ordering"]["losses"]), np.array(runs["tic"]["losses"])
        )
    )
    rows = []
    stride = max(1, iters // 50)
    for i in range(0, iters, stride):
        rows.append(
            {
                "iteration": i,
                "loss_no_ordering": runs["no_ordering"]["losses"][i],
                "loss_tic": runs["tic"]["losses"][i],
            }
        )
    first, last = runs["tic"]["losses"][0], runs["tic"]["losses"][-1]
    text = "\n".join(
        [
            "Fig. 8: training loss, no-ordering vs TIC "
            f"({iters} iterations, synthetic dataset)",
            f"  curves identical: {identical}",
            f"  loss {first:.4f} -> {last:.4f} "
            f"(accuracy {runs['tic']['accuracy']:.3f})",
            render_rows(rows[:10], "  first sampled points", floatfmt=".4f"),
        ]
    )
    return Report(
        rows=rows, text=text, extras={"identical": identical, "final_loss": last}
    )


# ======================================================================
# Fig. 9 — speedup vs. number of parameter servers (envG)
# ======================================================================

@register_analysis("fig9")
def _fig9(run: ScenarioRun) -> Report:
    algorithm = run.param("algorithm")
    n_workers = run.cells[0].spec.n_workers
    rows = []
    for cell, (gain, sched, base) in zip(run.cells, run.speedups):
        rows.append(
            {
                "model": cell.model,
                "workload": cell.spec.workload,
                "workers": n_workers,
                "ps": cell.spec.n_ps,
                "baseline_sps": round(base.throughput, 1),
                f"{algorithm}_sps": round(sched.throughput, 1),
                "speedup_pct": round(gain, 1),
            }
        )
        run.log(
            f"  fig9 {cell.model} {cell.spec.workload} "
            f"ps{cell.spec.n_ps}: {gain:+.1f}%"
        )
    text = render_rows(
        rows,
        f"Fig. 9: speedup of {algorithm.upper()} vs baseline, scaling parameter "
        f"servers (envG, {n_workers} workers)",
    )
    return Report(rows=rows, text=text)


# ======================================================================
# Fig. 10 — speedup vs. computational load (batch-size factor)
# ======================================================================

BATCH_FACTORS = (0.5, 1.0, 2.0)


@register_analysis("fig10")
def _fig10(run: ScenarioRun) -> Report:
    algorithm = run.param("algorithm")
    rows = []
    for cell, (gain, sched, base) in zip(run.cells, run.speedups):
        rows.append(
            {
                "model": cell.model,
                "batch_factor": cell.batch_factor,
                "batch": sched.batch_size,
                "baseline_sps": round(base.throughput, 1),
                f"{algorithm}_sps": round(sched.throughput, 1),
                "speedup_pct": round(gain, 1),
            }
        )
        run.log(f"  fig10 {cell.model} x{cell.batch_factor}: {gain:+.1f}%")
    text = render_rows(
        rows,
        f"Fig. 10: speedup of {algorithm.upper()} vs baseline under batch-size "
        f"scaling (envG, {run.param('n_workers')} workers, inference)",
    )
    return Report(rows=rows, text=text)


# ======================================================================
# Fig. 11 — scheduling efficiency and straggler effect vs. model size
# ======================================================================

@lru_cache(maxsize=None)
def ops_per_worker(model: str, workload: str) -> int:
    """Worker-partition op count (Fig. 11's x axis; submitted as a sweep
    task so warm-cache runs skip the model builds too)."""
    ir = build_model(model)
    placement = shard_parameters(ir.params, ["ps:0"])
    mode = WORKER_TRAINING if workload == "training" else WORKER_INFERENCE
    return len(emit_graph(ir, mode, placement=placement).graph)


@register_analysis("fig11")
def _fig11(run: ScenarioRun) -> Report:
    cells, results = run.cells, run.results
    n_ops_of = dict(
        zip(
            [(c.model, c.spec.workload) for c in cells],
            run.sweep.run_tasks(
                [
                    FnTask.make(
                        ops_per_worker, model=c.model, workload=c.spec.workload
                    )
                    for c in cells
                ]
            ),
        )
    )
    rows = []
    for cell, result in zip(cells, results):
        rows.append(
            {
                "model": cell.model,
                "workload": cell.spec.workload,
                "algorithm": cell.algorithm,
                "ops_per_worker": n_ops_of[(cell.model, cell.spec.workload)],
                "efficiency_mean": round(result.mean_efficiency, 4),
                "efficiency_max": round(result.max_efficiency, 4),
                "straggler_pct_max": round(result.max_straggler_pct, 2),
                "straggler_pct_mean": round(result.mean_straggler_pct, 2),
            }
        )
        if cell.algorithm == "tic":
            run.log(f"  fig11 {cell.model} {cell.spec.workload}: done")
    text = render_rows(
        rows,
        "Fig. 11: (a) scheduling efficiency and (b) straggler time vs ops per "
        f"worker (envG, {run.param('n_workers')} workers, baseline vs TIC)",
        floatfmt=".3f",
    )
    return Report(rows=rows, text=text)


# ======================================================================
# Fig. 12 — scheduling efficiency vs. step time, and consistency (envC)
# ======================================================================

@register_analysis("fig12")
def _fig12(run: ScenarioRun) -> Report:
    model, n_workers = run.param("model"), run.param("n_workers")
    runs = run.scale.consistency_runs
    cfg = run.sim_config(iterations=runs, warmup=0)
    keys = [
        (workload, algorithm)
        for workload in ("training", "inference")
        for algorithm in ("baseline", "tac")
    ]
    cells = [
        SimCell(
            model=model,
            spec=ClusterSpec(n_workers=n_workers, n_ps=1, workload=workload),
            algorithm=algorithm,
            platform="envC",
            config=cfg,
        )
        for workload, algorithm in keys
    ]
    results = dict(zip(keys, run.sweep.run_cells(cells)))
    for workload, algorithm in keys:
        run.log(f"  fig12 {workload}/{algorithm}: {runs} runs done")

    # --- (a) regression: efficiency vs normalized step time (training) ---
    effs, steps = [], []
    for algorithm in ("baseline", "tac"):
        r = results[("training", algorithm)]
        effs.extend(r.efficiencies.tolist())
        steps.extend(r.iteration_times.tolist())
    norm = normalized_step_time(steps)
    fit = linear_regression(effs, norm.tolist())

    # --- (b) CDF of normalized step time (inference) ----------------------
    base_times = results[("inference", "baseline")].iteration_times
    tac_times = results[("inference", "tac")].iteration_times
    pooled_min = min(base_times.min(), tac_times.min())
    base_norm = pooled_min / base_times
    tac_norm = pooled_min / tac_times
    p95_base = percentile(base_norm, 5)  # 95th pct of slowness = 5th of norm
    p95_tac = percentile(tac_norm, 5)

    rows = []
    for algorithm, norm_vals in (("baseline", base_norm), ("tac", tac_norm)):
        xs, ps = empirical_cdf(norm_vals)
        stride = max(1, len(xs) // 40)
        for x, p in zip(xs[::stride], ps[::stride]):
            rows.append(
                {
                    "series": f"cdf_{algorithm}",
                    "normalized_step_time": round(float(x), 5),
                    "cum_prob": round(float(p), 4),
                }
            )
    summary_rows = [
        {
            "metric": "regression_r2",
            "value": round(fit.r2, 4),
            "paper": 0.98,
        },
        {
            "metric": "p95_norm_step_baseline",
            "value": round(p95_base, 4),
            "paper": 0.63403,
        },
        {
            "metric": "p95_norm_step_tac",
            "value": round(p95_tac, 4),
            "paper": 0.99825,
        },
        {
            "metric": "step_cv_baseline",
            "value": round(float(base_times.std() / base_times.mean()), 4),
            "paper": float("nan"),
        },
        {
            "metric": "step_cv_tac",
            "value": round(float(tac_times.std() / tac_times.mean()), 4),
            "paper": float("nan"),
        },
    ]
    sketch = scatter_sketch(
        effs, norm.tolist(),
        title="Fig. 12a sketch: scheduling efficiency (x) vs normalized step time (y)",
    )
    text = "\n".join(
        [
            f"Fig. 12: {model}, envC, {runs} runs, {n_workers} workers",
            render_rows(summary_rows, "  summary (ours vs paper)", floatfmt=".4f"),
            sketch,
        ]
    )
    return Report(
        rows=summary_rows + rows,
        text=text,
        extras={
            "r2": fit.r2,
            "p95_baseline": p95_base,
            "p95_tac": p95_tac,
        },
    )


# ======================================================================
# Fig. 13 / Appendix B — TIC vs. TAC on the commodity CPU cluster (envC)
# ======================================================================

@register_analysis("fig13")
def _fig13(run: ScenarioRun) -> Report:
    n_workers = run.param("n_workers")
    speedups = iter(run.speedups)
    rows = []
    for workload in ("inference", "training"):
        for model in ENVC_MODEL_NAMES:
            entry = {
                "model": model,
                "workload": workload,
                "workers": n_workers,
            }
            for algorithm in ("tic", "tac"):
                gain, _, base = next(speedups)
                entry[f"{algorithm}_speedup_pct"] = round(gain, 1)
                entry["baseline_sps"] = round(base.throughput, 1)
            rows.append(entry)
            run.log(
                f"  fig13 {model} {workload}: tic {entry['tic_speedup_pct']:+.1f}% "
                f"tac {entry['tac_speedup_pct']:+.1f}%"
            )
    text = render_rows(
        rows,
        f"Fig. 13: TIC and TAC speedup vs baseline (envC, {n_workers} workers)",
    )
    return Report(rows=rows, text=text)


# ======================================================================
# Headline claims (§1/abstract) — aggregate maxima over the sweeps
# ======================================================================

@register_analysis("headline")
def _headline(run: ScenarioRun) -> Report:
    best = {"inference": (-1e9, ""), "training": (-1e9, "")}
    worst = (1e9, "")
    straggler_ratios = []
    # The headline scan is exactly Fig. 7's grid, so a run that follows
    # (or precedes) fig7 resolves entirely from the sweep cache.
    for cell, (gain, sched, base) in zip(run.cells, run.speedups):
        workload, w = cell.spec.workload, cell.spec.n_workers
        tag = f"{cell.model}/w{w}"
        if gain > best[workload][0]:
            best[workload] = (gain, tag)
        if gain < worst[0]:
            worst = (gain, tag)
        if w > 1 and sched.max_straggler_pct > 0:
            straggler_ratios.append(
                (base.max_straggler_pct / max(sched.max_straggler_pct, 1e-9),
                 tag + "/" + workload)
            )
    best_straggler = max(straggler_ratios) if straggler_ratios else (float("nan"), "n/a")
    rows = [
        {
            "claim": "max inference speedup",
            "ours_pct": round(best["inference"][0], 1),
            "paper_pct": 37.7,
            "where": best["inference"][1],
        },
        {
            "claim": "max training speedup",
            "ours_pct": round(best["training"][0], 1),
            "paper_pct": 19.2,
            "where": best["training"][1],
        },
        {
            "claim": "worst slowdown",
            "ours_pct": round(worst[0], 1),
            "paper_pct": -4.2,
            "where": worst[1],
        },
        {
            "claim": "max straggler reduction (x)",
            "ours_pct": round(best_straggler[0], 2),
            "paper_pct": 2.3,
            "where": best_straggler[1],
        },
    ]
    text = render_rows(rows, "Headline claims (abstract) — ours vs paper")
    return Report(rows=rows, text=text)


# ======================================================================
# Ablations — §5.1's design choices made measurable
# ======================================================================

ABLATION_MODEL = "ResNet-50 v1"
ABLATION_WORKERS, ABLATION_PS = 4, 1


def custom_schedule_throughputs(seed: int, iterations: int, warmup: int) -> dict:
    """Throughput of every hand-scheduled variant (one sweep task: the
    model, reference partition and traced oracle are shared across the
    four tac() invocations, as the comparator/oracle study intends)."""
    ir = build_model(ABLATION_MODEL)
    spec = ClusterSpec(n_workers=ABLATION_WORKERS, n_ps=ABLATION_PS, workload="training")
    reference = build_reference_partition(ir, workload="training", n_ps=ABLATION_PS)
    oracle = estimate_time_oracle(reference.graph, ENV_G, seed=seed)
    schedules = {
        "tac_eq6": tac(reference.graph, oracle),
        "tac_as_printed": tac(
            reference.graph, oracle, comparator=precedes_as_printed,
            algorithm_name="tac_as_printed",
        ),
        "tac_exact": tac(
            reference.graph, ENV_G.oracle(), algorithm_name="tac_exact"
        ),
        "tac_noisy": tac(
            reference.graph, PerturbedOracle(oracle, sigma=1.0, seed=seed),
            algorithm_name="tac_noisy",
        ),
    }
    cfg = SimConfig(seed=seed, iterations=iterations, warmup=warmup)
    return {
        variant: float(
            simulate_cluster(
                ir, spec, schedule=schedule, platform="envG", config=cfg
            ).throughput
        )
        for variant, schedule in schedules.items()
    }


@register_analysis("ablations")
def _ablations(run: ScenarioRun) -> Report:
    spec = ClusterSpec(
        n_workers=ABLATION_WORKERS, n_ps=ABLATION_PS, workload="training"
    )
    cfg = run.sim_config()

    def cell(algorithm: str = "tic", *, spec=spec, config=cfg) -> SimCell:
        return SimCell(
            model=ABLATION_MODEL, spec=spec, algorithm=algorithm,
            platform="envG", config=config,
        )

    # --- grid-shaped variants: one batch of cells -----------------------
    enforcement_modes = ("sender", "ready_queue", "dag")
    noise_probs = (0.0, 0.005, 0.05)
    sharding_strategies = ("greedy", "round_robin")
    cells = [cell("baseline")]
    cells += [
        cell(config=cfg.with_(enforcement=mode)) for mode in enforcement_modes
    ]
    cells += [cell(algo) for algo in ("tic", "tic_plus")]
    cells += [
        cell(config=cfg.with_(grpc_reorder_prob=prob)) for prob in noise_probs
    ]
    cells += [
        cell(spec=ClusterSpec(n_workers=ABLATION_WORKERS, n_ps=2, workload="training",
                              sharding=strategy))
        for strategy in sharding_strategies
    ]
    results = iter(run.sweep.run_cells(cells))

    # --- custom-schedule variants: one shared-build task ----------------
    custom_tps, = run.sweep.run_tasks(
        [
            FnTask.make(
                custom_schedule_throughputs, seed=run.seed,
                iterations=cfg.iterations, warmup=cfg.warmup,
            )
        ]
    )
    # 'estimated (min of 5)' re-reports tac_eq6 (it is the same schedule).
    task_order = ("tac_eq6", "tac_as_printed", "tac_eq6", "tac_exact", "tac_noisy")
    throughputs = iter(custom_tps[v] for v in task_order)

    rows = []
    base_tp = next(results).throughput

    def add(group: str, variant: str, tp: float) -> None:
        rows.append(
            {
                "group": group,
                "variant": variant,
                "throughput_sps": round(tp, 1),
                "vs_baseline_pct": round((tp - base_tp) / base_tp * 100, 1),
            }
        )

    add("enforcement", "none (baseline)", base_tp)
    for mode in enforcement_modes:
        add("enforcement", mode, next(results).throughput)

    tic_tp, tic_plus_tp = (next(results).throughput for _ in range(2))
    noise_tps = [next(results).throughput for _ in noise_probs]
    sharding_tps = [next(results).throughput for _ in sharding_strategies]

    add("comparator", "tac (Eq. 6)", next(throughputs))
    add("comparator", "tac (as printed)", next(throughputs))

    add("tic_variant", "tic", tic_tp)
    add("tic_variant", "tic_plus", tic_plus_tp)

    add("oracle", "estimated (min of 5)", next(throughputs))
    add("oracle", "exact", next(throughputs))
    add("oracle", "perturbed (sigma=1.0)", next(throughputs))

    for prob, tp in zip(noise_probs, noise_tps):
        add("grpc_noise", f"p={prob}", tp)

    for strategy, tp in zip(sharding_strategies, sharding_tps):
        rows.append(
            {
                "group": "sharding",
                "variant": strategy,
                "throughput_sps": round(tp, 1),
                "vs_baseline_pct": float("nan"),
            }
        )

    text = render_rows(
        rows,
        f"Ablations ({ABLATION_MODEL}, training, {ABLATION_WORKERS} workers, envG)",
    )
    return Report(rows=rows, text=text)


# ======================================================================
# Straggler-source decomposition (extends §6.3)
# ======================================================================

SLOWDOWNS = (1.0, 1.25, 1.5)


@register_analysis("stragglers")
def _stragglers(run: ScenarioRun) -> Report:
    model, n_workers = run.param("model"), run.param("n_workers")
    spec = ClusterSpec(n_workers=n_workers, n_ps=1, workload="training")
    points = [
        (slowdown, algorithm)
        for slowdown in SLOWDOWNS
        for algorithm in ("baseline", "tic")
    ]
    cells = [
        SimCell(
            model=model,
            spec=spec,
            algorithm=algorithm,
            platform="envG",
            config=run.sim_config(
                device_slowdown=()
                if slowdown == 1.0
                else (("worker:0", slowdown),)
            ),
        )
        for slowdown, algorithm in points
    ]
    rows = []
    for (slowdown, algorithm), result in zip(points, run.sweep.run_cells(cells)):
        rows.append(
            {
                "model": model,
                "slow_worker_factor": slowdown,
                "algorithm": algorithm,
                "iteration_ms": round(result.mean_iteration_time * 1e3, 1),
                "straggler_pct_max": round(result.max_straggler_pct, 2),
                "straggler_pct_mean": round(result.mean_straggler_pct, 2),
            }
        )
        if algorithm == "tic":
            run.log(f"  stragglers x{slowdown}: done")
    text = render_rows(
        rows,
        "Straggler decomposition (extends §6.3): scheduling-induced vs "
        f"system-induced straggling ({model}, {n_workers} workers, envG)",
    )
    return Report(rows=rows, text=text)


# ======================================================================
# Fault resilience (ISSUE 9 extension)
# ======================================================================

FAULT_INTENSITIES = (0.0, 0.25, 0.5, 0.75)


def fault_plan_for(intensity: float):
    """The scenario's fault recipe scaled by ``intensity`` in [0, 1]:
    the PS<->worker:0 link degrades to ``1 - intensity`` of nominal
    bandwidth over the first 500 ms of every iteration, while worker:1's
    compute runs ``1 + 2*intensity`` times slower over a mid-iteration
    window. ``intensity=0`` returns ``None`` (fault-free — byte-identical
    to a config with no plan at all, pinned by the hypothesis suite)."""
    from ..faults import FaultPlan, LinkDegradation, StragglerBurst

    if intensity <= 0:
        return None
    return FaultPlan((
        LinkDegradation("ps:0", "worker:0", start=0.0, duration=0.5,
                        factor=1.0 - intensity),
        StragglerBurst("worker:1", start=0.1, duration=0.4,
                       factor=1.0 + 2.0 * intensity),
    ))


@register_analysis("fault_resilience")
def _fault_resilience(run: ScenarioRun) -> Report:
    from ..obs.capture import trace_cell

    model, n_workers = run.param("model"), run.param("n_workers")
    spec = ClusterSpec(n_workers=n_workers, n_ps=1, workload="training")
    algorithms = ("baseline", "tic", "tac")
    points = [
        (intensity, algorithm)
        for intensity in FAULT_INTENSITIES
        for algorithm in algorithms
    ]
    cells = [
        SimCell(
            model=model,
            spec=spec,
            algorithm=algorithm,
            platform="envG",
            config=run.sim_config(faults=fault_plan_for(intensity)),
        )
        for intensity, algorithm in points
    ]
    results = run.sweep.run_cells(cells)
    base_ms = {
        intensity: res.mean_iteration_time * 1e3
        for (intensity, algorithm), res in zip(points, results)
        if algorithm == "baseline" and res is not None
    }
    rows = []
    attribution = []
    for (intensity, algorithm), cell, res in zip(points, cells, results):
        if res is None:  # quarantined: error row instead of a crash
            rows.append({
                "model": model,
                "algorithm": algorithm,
                "intensity": intensity,
                "iteration_ms": float("nan"),
            })
            continue
        # one traced iteration per cell attributes the damage: how much
        # capacity each fault window removed from busy entities.
        impact = trace_cell(cell).trace.fault_impact()
        comp_lost = sum(r["lost_s"] for r in impact if r["kind"] == "compute")
        wire_lost = sum(r["lost_s"] for r in impact if r["kind"] == "wire")
        iteration_ms = res.mean_iteration_time * 1e3
        rows.append({
            "model": model,
            "algorithm": algorithm,
            "intensity": intensity,
            "iteration_ms": round(iteration_ms, 1),
            "vs_baseline_pct": round(
                (base_ms[intensity] / iteration_ms - 1) * 100, 1
            ),
            "fault_compute_lost_ms": round(comp_lost * 1e3, 2),
            "fault_wire_lost_ms": round(wire_lost * 1e3, 2),
            "n_fault_windows": len(impact),
        })
        for r in impact:
            attribution.append(
                {"algorithm": algorithm, "intensity": intensity, **r}
            )
        if algorithm == algorithms[-1]:
            run.log(f"  fault intensity {intensity}: done")
    text = render_rows(
        rows,
        "Fault resilience: scheduling under degraded links and straggler "
        f"bursts ({model}, {n_workers} workers, envG)",
    )
    return Report(
        rows=rows,
        text=text,
        tables={"fault_resilience_attribution": attribution},
    )


# ======================================================================
# Pipelining ablation (extension)
# ======================================================================

def pipelined_metrics(
    model: str,
    n_workers: int,
    window: int,
    algorithm: str,
    iterations: int,
    seed: int,
) -> dict:
    """Steady-state metrics of one unrolled-window run (sweep task; the
    unrolled cluster graph is not a plain grid cell)."""
    spec = ClusterSpec(n_workers=n_workers, n_ps=1, workload="training")
    cfg = SimConfig(seed=seed, iterations=iterations, warmup=0)
    result = simulate_pipelined(
        model, spec, window=window, algorithm=algorithm,
        platform="envG", config=cfg,
    )
    return {
        "steady_s": result.mean_steady_iteration_time,
        "fill_s": result.fill_latency,
    }


@register_analysis("pipelining")
def _pipelining(run: ScenarioRun) -> Report:
    model = run.param("model")
    n_workers, window = run.param("n_workers"), run.param("window")
    spec = ClusterSpec(n_workers=n_workers, n_ps=1, workload="training")
    cfg = run.sim_config(iterations=max(2, run.scale.iterations // 2), warmup=0)
    algorithms = ("baseline", "tic")
    barriers = run.sweep.run_cells(
        [
            SimCell(model=model, spec=spec, algorithm=a, platform="envG", config=cfg)
            for a in algorithms
        ]
    )
    pipelineds = run.sweep.run_tasks(
        [
            FnTask.make(
                pipelined_metrics,
                model=model,
                n_workers=n_workers,
                window=window,
                algorithm=a,
                iterations=cfg.iterations,
                seed=cfg.seed,
            )
            for a in algorithms
        ]
    )
    rows = []
    for algorithm, barrier, pipelined in zip(algorithms, barriers, pipelineds):
        rows.append(
            {
                "algorithm": algorithm,
                "barrier_ms": round(barrier.mean_iteration_time * 1e3, 1),
                "pipelined_steady_ms": round(pipelined["steady_s"] * 1e3, 1),
                "pipelining_gain_pct": round(
                    (barrier.mean_iteration_time - pipelined["steady_s"])
                    / barrier.mean_iteration_time * 100, 1,
                ),
                "fill_latency_ms": round(pipelined["fill_s"] * 1e3, 1),
            }
        )
        run.log(f"  pipelining {algorithm}: done")
    base, tic = rows
    tic["tic_gain_pipelined_pct"] = round(
        (base["pipelined_steady_ms"] - tic["pipelined_steady_ms"])
        / base["pipelined_steady_ms"] * 100, 1,
    )
    text = render_rows(
        rows,
        f"Pipelining ablation ({model}, {n_workers} workers, training, "
        f"window={window}): barrier model vs per-parameter pipelining",
    )
    return Report(rows=rows, text=text)


# ======================================================================
# Collective backend evaluation: all-reduce topologies under TIC/TAC
# ======================================================================

TOPOLOGIES = ("ring", "hierarchical")
ALLREDUCE_ALGORITHMS = ("baseline", "tic", "tac")

MIB = 2**20
PARTITIONS_QUICK = (4 * MIB, 16 * MIB)
PARTITIONS_FULL = (1 * MIB, 4 * MIB, 16 * MIB)


def allreduce_axes(scale) -> tuple[tuple[str, ...], tuple[int, ...], tuple[int, ...]]:
    """(models, worker counts, partition sizes) for a scale."""
    if scale.name == "full":
        workers = tuple(w for w in scale.worker_counts if w >= 2)
        return scale.models, workers, PARTITIONS_FULL
    workers = tuple(w for w in scale.worker_counts if 2 <= w <= 4) or (2,)
    return scale.models[:3], workers, PARTITIONS_QUICK


def allreduce_grid_cells(scale, cfg: SimConfig) -> list[SimCell]:
    """The scenario's main evaluation grid, in deterministic row order."""
    models, workers, partitions = allreduce_axes(scale)
    cells = []
    for model in models:
        for topology in TOPOLOGIES:
            for n_workers in workers:
                for partition in partitions:
                    spec = make_spec(
                        "allreduce",
                        n_workers=n_workers,
                        topology=topology,
                        partition_bytes=partition,
                    )
                    for algorithm in ALLREDUCE_ALGORITHMS:
                        cells.append(
                            SimCell(
                                model=model,
                                spec=spec,
                                algorithm=algorithm,
                                platform="envG",
                                config=cfg,
                            )
                        )
    return cells


@register_analysis("allreduce")
def _allreduce(run: ScenarioRun) -> Report:
    models, workers, partitions = allreduce_axes(run.scale)

    # --- main grid ----------------------------------------------------
    cells = allreduce_grid_cells(run.scale, run.sim_config())
    results = run.sweep.run_cells(cells)
    by_cell = dict(zip(cells, results))
    rows = []
    for cell, res in zip(cells, results):
        base = by_cell[cell.with_(algorithm="baseline")]
        gain = (res.throughput - base.throughput) / base.throughput * 100.0
        rows.append(
            {
                "model": cell.model,
                "topology": cell.spec.topology,
                "workers": cell.spec.n_workers,
                "partition_mib": cell.spec.partition_bytes // MIB,
                "algorithm": cell.algorithm,
                "iteration_time_s": round(res.mean_iteration_time, 6),
                "throughput_sps": round(res.throughput, 1),
                "speedup_pct": round(gain, 2),
                "efficiency_mean": round(res.mean_efficiency, 4),
            }
        )
        if cell.algorithm != "baseline":
            run.log(
                f"  allreduce {cell.model} {cell.spec.topology} "
                f"w{cell.spec.n_workers} p{cell.spec.partition_bytes // MIB}MiB "
                f"{cell.algorithm}: {gain:+.1f}%"
            )

    # --- analytic ring wire check ------------------------------------
    wire = get_platform("wire")
    wire_cfg = run.sim_config(iterations=2, warmup=0)
    wire_cells = [
        SimCell(
            model=model,
            spec=make_spec(
                "allreduce",
                n_workers=w,
                topology="ring",
                partition_bytes=partitions[0],
            ),
            algorithm="baseline",
            platform="wire",
            config=wire_cfg,
        )
        for model in models
        for w in workers
    ]
    model_bytes = {m: build_model(m).total_param_bytes for m in models}
    wire_rows = []
    for cell, res in zip(wire_cells, run.sweep.run_cells(wire_cells)):
        w = cell.spec.n_workers
        bound = 2 * (w - 1) / w * model_bytes[cell.model] / wire.bandwidth_bps
        wire_rows.append(
            {
                "model": cell.model,
                "workers": w,
                "analytic_s": round(bound, 6),
                "simulated_s": round(res.mean_iteration_time, 6),
                "ratio": round(res.mean_iteration_time / bound, 4),
            }
        )

    # --- PS vs all-reduce headline ------------------------------------
    w_head = max(workers)
    vs_rows = []
    ps_cells = [
        SimCell(
            model=model,
            spec=make_spec("ps", n_workers=w_head, n_ps=ps_for_workers(w_head)),
            algorithm="tac",
            platform="envG",
            config=run.sim_config(),
        )
        for model in models
    ]
    for model, ps_res in zip(models, run.sweep.run_cells(ps_cells)):
        ring_tac = [
            r
            for r in rows
            if r["model"] == model
            and r["topology"] == "ring"
            and r["workers"] == w_head
            and r["algorithm"] == "tac"
        ]
        best = min(ring_tac, key=lambda r: r["iteration_time_s"])
        delta = (
            (ps_res.mean_iteration_time - best["iteration_time_s"])
            / ps_res.mean_iteration_time
            * 100.0
        )
        vs_rows.append(
            {
                "model": model,
                "workers": w_head,
                "ps_tac_s": round(ps_res.mean_iteration_time, 6),
                "allreduce_tac_s": best["iteration_time_s"],
                "best_partition_mib": best["partition_mib"],
                "allreduce_faster_pct": round(delta, 1),
            }
        )

    text = "\n\n".join(
        [
            render_rows(
                rows,
                "All-reduce backend: {ring, hierarchical} x {baseline, TIC, "
                "TAC} x partition x workers (envG)",
            ),
            render_rows(
                wire_rows,
                "Ring wire check: simulated vs analytic 2(W-1)/W * M/B "
                "(wire platform)",
            ),
            render_rows(
                vs_rows,
                f"PS (TAC, 1:4 provisioning) vs ring all-reduce (TAC), "
                f"W={w_head} (envG)",
            ),
        ]
    )
    return Report(
        rows=rows,
        text=text,
        tables={
            "allreduce_wire_check": wire_rows,
            "allreduce_vs_ps": vs_rows,
        },
    )


# ======================================================================
# Scenario definitions — presentation order (`tictac-repro all`)
# ======================================================================

register_scenario(Scenario(
    name="table1",
    title="Table 1: DNN model characteristics, ours vs the paper",
    output="table1_models",
    analyze="table1",
    backends=(),
    platforms=(),
    models="zoo",
))

register_scenario(Scenario(
    name="motivation",
    title="§2.2 motivation: how random is the transfer order?",
    output="motivation_unique_orders",
    analyze="motivation",
    backends=("ps",),
    platforms=("envG",),
    models=MOTIVATION_MODELS + ("ResNet-152 v2",),
))

register_scenario(Scenario(
    name="fig7",
    title="Fig. 7: throughput speedup vs number of workers (envG)",
    output="fig7_worker_scaling",
    analyze="fig7",
    grid=FIG7_GRID,
    params=(("algorithm", "tic"),),
))

register_scenario(Scenario(
    name="fig8",
    title="Fig. 8: training loss with and without enforced ordering",
    output="fig8_training_loss",
    analyze="fig8",
    backends=(),
    platforms=(),
    models=(),
))

register_scenario(Scenario(
    name="fig9",
    title="Fig. 9: speedup vs number of parameter servers (envG)",
    output="fig9_ps_scaling",
    analyze="fig9",
    grid=Grid(
        models="scale",
        workloads=("inference", "training"),
        workers="$n_workers",
        ps="scale",
        algorithms=("$algorithm",),
        platforms=("envG",),
        cap_workers_quick=True,
    ),
    params=(("algorithm", "tic"), ("n_workers", 8)),
))

register_scenario(Scenario(
    name="fig10",
    title="Fig. 10: speedup vs computational load (batch-size factor)",
    output="fig10_batch_scaling",
    analyze="fig10",
    grid=Grid(
        models="scale",
        workloads=("inference",),
        workers="$n_workers",
        ps=1,
        algorithms=("$algorithm",),
        platforms=("envG",),
        batch_factors=BATCH_FACTORS,
    ),
    params=(("algorithm", "tic"), ("n_workers", 4)),
))

register_scenario(Scenario(
    name="fig11",
    title="Fig. 11: scheduling efficiency and straggler effect vs model size",
    output="fig11_efficiency_stragglers",
    analyze="fig11",
    grid=Grid(
        models="scale",
        workloads=("inference", "training"),
        workers="$n_workers",
        ps="ratio",
        algorithms=("baseline", "tic"),
        platforms=("envG",),
        compare_baseline=False,
    ),
    params=(("n_workers", 4),),
))

register_scenario(Scenario(
    name="fig12",
    title="Fig. 12: scheduling efficiency vs step time, and consistency (envC)",
    output="fig12_consistency",
    analyze="fig12",
    platforms=("envC",),
    models="$model",
    algorithms=("baseline", "tac"),
    params=(("model", "Inception v2"), ("n_workers", 4)),
))

register_scenario(Scenario(
    name="fig13",
    title="Fig. 13: TIC vs TAC on the commodity CPU cluster (envC)",
    output="fig13_tic_vs_tac",
    analyze="fig13",
    platforms=("envC",),
    models="envc",
    grid=Grid(
        models="envc",
        workloads=("inference", "training"),
        workers="$n_workers",
        ps=1,
        algorithms=("tic", "tac"),
        platforms=("envC",),
    ),
    params=(("n_workers", 4),),
))

register_scenario(Scenario(
    name="headline",
    title="Headline claims (abstract): aggregate maxima over the sweeps",
    output="headline",
    analyze="headline",
    grid=FIG7_GRID,
    params=(("algorithm", "tic"),),
))

register_scenario(Scenario(
    name="ablations",
    title="Ablations: §5.1's design choices made measurable",
    output="ablations",
    analyze="ablations",
    models=(ABLATION_MODEL,),
    algorithms=("baseline", "tic", "tic_plus", "tac"),
))

register_scenario(Scenario(
    name="stragglers",
    title="Straggler-source decomposition (extends §6.3)",
    output="straggler_decomposition",
    analyze="stragglers",
    models="$model",
    algorithms=("baseline", "tic"),
    params=(("model", "ResNet-50 v1"), ("n_workers", 4)),
))

register_scenario(Scenario(
    name="fault_resilience",
    title="Fault resilience: scheduling algorithms under injected faults",
    output="fault_resilience",
    analyze="fault_resilience",
    models="$model",
    algorithms=("baseline", "tic", "tac"),
    aux_outputs=("fault_resilience_attribution",),
    params=(("model", "AlexNet v2"), ("n_workers", 2)),
))

register_scenario(Scenario(
    name="pipelining",
    title="Pipelining ablation: does the benefit survive cross-iteration overlap?",
    output="pipelining_ablation",
    analyze="pipelining",
    models="$model",
    algorithms=("baseline", "tic"),
    params=(("model", "ResNet-50 v1"), ("n_workers", 4), ("window", 4)),
))

register_scenario(Scenario(
    name="allreduce",
    title="Collective backend: all-reduce topologies under TIC/TAC",
    output="allreduce_comparison",
    analyze="allreduce",
    backends=("allreduce", "ps"),
    platforms=("envG", "wire"),
    models="scale",
    algorithms=ALLREDUCE_ALGORITHMS,
    aux_outputs=("allreduce_wire_check", "allreduce_vs_ps"),
    extras_csv=(
        ("wire_check_csv", "allreduce_wire_check"),
        ("vs_ps_csv", "allreduce_vs_ps"),
    ),
))
