"""Typed results: scenario runs return values, not side effects.

A :class:`ResultSet` bundles a scenario run's primary table, any
auxiliary tables (e.g. the all-reduce wire check), the rendered text
report, free-form extras, and :class:`Provenance` — which engine
revision, event-loop kernel, scale and cache behaviour produced the
numbers. Writing CSVs is an explicit, separate step
(:meth:`ResultSet.to_csv` / :meth:`ResultSet.save`), so embedders can
consume rows directly and the CLI remains a thin persistence shell.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from ..analysis import format_table, write_csv

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .scenario import Scenario

Rows = list[dict]


@dataclass
class Report:
    """What an analysis callback hands back to the engine: the primary
    table's rows, the rendered text, optional auxiliary tables (name ->
    rows; each becomes ``<name>.csv`` on save) and free-form extras."""

    rows: Rows
    text: str
    tables: dict[str, Rows] = field(default_factory=dict)
    extras: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Provenance:
    """Where a :class:`ResultSet`'s numbers came from."""

    scenario: str
    scale: str
    seed: int
    jobs: int
    engine_rev: int
    kernel: str
    backends: tuple[str, ...]
    #: sweep-cache activity during this run: hits/misses/writes deltas.
    cache: Mapping[str, int]
    elapsed_s: float

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "scale": self.scale,
            "seed": self.seed,
            "jobs": self.jobs,
            "engine_rev": self.engine_rev,
            "kernel": self.kernel,
            "backends": list(self.backends),
            "cache": dict(self.cache),
            "elapsed_s": self.elapsed_s,
        }


def _columns(rows: Sequence[Mapping[str, object]]) -> tuple[str, ...]:
    cols: list[str] = []
    for row in rows:
        for key in row:
            if key not in cols:
                cols.append(key)
    return tuple(cols)


@dataclass
class ResultSet:
    """The value returned by :meth:`repro.api.Session.run`."""

    #: primary output stem — ``to_csv`` writes ``<name>.csv``.
    name: str
    scenario: "Scenario"
    rows: Rows
    text: str
    tables: dict[str, Rows] = field(default_factory=dict)
    extras: dict = field(default_factory=dict)
    provenance: Optional[Provenance] = None
    #: run telemetry: the sweep runner's counter deltas over this
    #: scenario (cells requested/deduped/cached/simulated, worker wall
    #: time, shared-core activity, cache and memo hit/miss counts — see
    #: :mod:`repro.obs.telemetry` for the schema). Empty when the run
    #: touched no sweep machinery.
    telemetry: dict = field(default_factory=dict)

    def telemetry_rows(self) -> Rows:
        """Telemetry as tidy ``{"counter", "value"}`` rows (CSV-ready;
        fold several result sets back together with
        :func:`repro.obs.telemetry.merge_rows`)."""
        return [
            {"counter": name, "value": value}
            for name, value in sorted(self.telemetry.items())
        ]

    @property
    def schema(self) -> tuple[str, ...]:
        """Column names of the primary table, in first-seen order (the
        order ``to_csv`` writes them)."""
        return _columns(self.rows)

    def table_names(self) -> tuple[str, ...]:
        return (self.name, *self.tables)

    def _rows_for(self, table: Optional[str]) -> Rows:
        if table is None or table == self.name:
            return self.rows
        try:
            return self.tables[table]
        except KeyError:
            raise KeyError(
                f"no table {table!r} in this result set; "
                f"available: {list(self.table_names())}"
            ) from None

    def to_csv(self, results_dir: str = "results") -> dict[str, str]:
        """Write every table under ``results_dir`` (primary first), byte-
        identical to the legacy driver output. Returns stem -> path."""
        paths = {
            self.name: write_csv(
                os.path.join(results_dir, f"{self.name}.csv"), self.rows
            )
        }
        for name, rows in self.tables.items():
            paths[name] = write_csv(
                os.path.join(results_dir, f"{name}.csv"), rows
            )
        return paths

    def save(self, results_dir: str = "results") -> dict[str, str]:
        """``to_csv`` plus the scenario's declared extras aliases: tables
        named in ``Scenario.extras_csv`` get their written path recorded
        under the legacy extras key (e.g. ``wire_check_csv``), which the
        deprecated driver shims and their callers rely on."""
        paths = self.to_csv(results_dir)
        for key, table in self.scenario.extras_csv:
            self.extras[key] = paths[table]
        return paths

    def to_table(self, table: Optional[str] = None, **kwargs) -> str:
        """Render one table (default: primary) as aligned monospace text."""
        return format_table(self._rows_for(table), **kwargs)

    def frame(self, table: Optional[str] = None):
        """Columnar view of one table: a pandas ``DataFrame`` when pandas
        is importable, otherwise a plain ``{column: [values...]}`` dict
        (this repo deliberately has no hard pandas dependency)."""
        rows = self._rows_for(table)
        try:  # pragma: no cover - pandas is not in the pinned test env
            import pandas

            return pandas.DataFrame(rows)
        except ImportError:
            cols = _columns(rows)
            return {c: [row.get(c) for row in rows] for c in cols}

    def __len__(self) -> int:
        return len(self.rows)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text
