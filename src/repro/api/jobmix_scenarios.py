"""Multi-job scenarios: co-scheduling studies as registry entries.

A :class:`JobMixScenario` is the declarative surface of the multi-job
layer (:mod:`repro.sim.jobmix`): a list of jobs (model x backend x
shape x algorithm x arrival offset), the placement policies to compare,
and the platform. The generic ``jobmix`` analysis callback expands it
into :class:`~repro.sweep.spec.SimCell`\\ s — one per (algorithm,
placement), always including the ``dedicated`` reference placement —
runs them through the shared sweep runner (so mixes hit the same disk
cache and shared-core publication as single-job sweeps), and reports
per-job completion time (JCT), slowdown vs dedicated, mix makespan and
Jain fairness.

Two studies ship:

* ``jobmix_contention`` — two identical PS jobs, the second arriving
  mid-flight of the first, on the communication-bound envC platform:
  ``packed`` placement makes their transfers share host NICs and the
  late job pays a measurable contention tax; ``spread`` (given enough
  hosts) recovers the dedicated numbers.
* ``jobmix_crosstalk`` — a TIC job and a TAC job co-scheduled: does
  per-job transfer scheduling survive cross-job interference, and does
  one job's schedule help or hurt its neighbour?
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backends.placement import place_jobs
from ..sim.jobmix import JobMixSpec, JobSpec, job_label
from ..sweep.spec import SimCell
from .engine import ScenarioRun
from .registry import register_analysis, register_scenario
from .resultset import Report
from .scenario import Scenario
from .scenarios import render_rows


@dataclass(frozen=True)
class JobMixScenario:
    """Declarative description of one co-scheduling study.

    ``algorithms`` entries are engine algorithm names; the sentinel
    ``"mix"`` dispatches each job to its own :attr:`JobSpec.algorithm`.
    ``n_hosts=0`` auto-sizes the shared cluster to the minimum feasible
    host count — pass a larger count to give ``spread``/``rack_aware``
    room to separate jobs.
    """

    jobs: tuple[JobSpec, ...]
    placements: tuple[str, ...] = ("packed",)
    platform: str = "envC"
    algorithms: tuple[str, ...] = ("mix",)
    n_hosts: int = 0
    slots_per_host: int = 2

    def all_placements(self) -> tuple[str, ...]:
        """``dedicated`` (the slowdown denominator) first, then the
        declared placements in order."""
        declared = tuple(p for p in self.placements if p != "dedicated")
        return ("dedicated",) + declared

    def mix_spec(self, placement: str) -> JobMixSpec:
        return JobMixSpec(
            jobs=self.jobs,
            placement=placement,
            n_hosts=self.n_hosts,
            slots_per_host=self.slots_per_host,
        )

    def cells(self, cfg) -> list[SimCell]:
        """One cell per (algorithm, placement), algorithm-major."""
        return [
            SimCell(
                model=self.jobs[0].model,
                spec=self.mix_spec(placement),
                algorithm=algorithm,
                platform=self.platform,
                config=cfg,
            )
            for algorithm in self.algorithms
            for placement in self.all_placements()
        ]

    def hosts_used(self, placement: str) -> int:
        """Distinct hosts the placement actually occupies."""
        devices_by_job = [
            [f"{job_label(i)}/{d}" for d in job.devices()]
            for i, job in enumerate(self.jobs)
        ]
        mapping = place_jobs(
            devices_by_job,
            placement,
            n_hosts=self.n_hosts,
            slots_per_host=self.slots_per_host,
        )
        return len(set(mapping.values()))


def _jain(values: list[float]) -> float:
    """Jain's fairness index over positive values: 1 is perfectly fair,
    1/n is maximally unfair."""
    if not values:
        return 1.0
    square_of_sum = sum(values) ** 2
    sum_of_squares = sum(v * v for v in values)
    return square_of_sum / (len(values) * sum_of_squares) if sum_of_squares else 1.0


def _job_stats(res, mix: JobMixScenario) -> tuple[dict[str, float], float]:
    """(mean JCT per job label, mean mix makespan) over measured
    iterations. A job's completion time is its last-op finish minus its
    arrival offset (roots release at the offset, so the finish times
    already include it)."""
    n = len(res.iterations)
    jct = {}
    for i, job in enumerate(mix.jobs):
        label = job_label(i)
        finish = sum(it.job_finish[label] for it in res.iterations) / n
        jct[label] = finish - job.arrival
    makespan = sum(it.makespan for it in res.iterations) / n
    return jct, makespan


def _mix_tables(run: ScenarioRun, mix: JobMixScenario) -> tuple:
    """The JCT/fairness tables every job-mix analysis shares: per-job
    rows, the placement summary, and the cell factory (so callers can
    re-derive any cell, e.g. to trace it). Numbers are identical through
    every caller — the sweep cache sees one cell set."""
    cells = mix.cells(run.sim_config())
    by_cell = dict(zip(cells, run.sweep.run_cells(cells)))

    def cell_for(algorithm: str, placement: str) -> SimCell:
        return SimCell(
            model=mix.jobs[0].model,
            spec=mix.mix_spec(placement),
            algorithm=algorithm,
            platform=mix.platform,
            config=run.sim_config(),
        )

    rows = []
    summary = []
    for algorithm in mix.algorithms:
        ded_jct, ded_makespan = _job_stats(
            by_cell[cell_for(algorithm, "dedicated")], mix
        )
        for placement in mix.all_placements():
            jct, makespan = _job_stats(
                by_cell[cell_for(algorithm, placement)], mix
            )
            slowdowns = []
            for i, job in enumerate(mix.jobs):
                label = job_label(i)
                slowdown = jct[label] / ded_jct[label]
                slowdowns.append(slowdown)
                rows.append(
                    {
                        "algorithm": algorithm,
                        "placement": placement,
                        "job": label,
                        "model": job.model,
                        "job_algorithm": job.algorithm,
                        "arrival_s": round(job.arrival, 6),
                        "jct_s": round(jct[label], 6),
                        "dedicated_jct_s": round(ded_jct[label], 6),
                        "slowdown": round(slowdown, 4),
                    }
                )
            summary.append(
                {
                    "algorithm": algorithm,
                    "placement": placement,
                    "hosts": mix.hosts_used(placement),
                    "makespan_s": round(makespan, 6),
                    "dedicated_makespan_s": round(ded_makespan, 6),
                    "stretch": round(makespan / ded_makespan, 4),
                    "mean_slowdown": round(
                        sum(slowdowns) / len(slowdowns), 4
                    ),
                    "jain_fairness": round(_jain(slowdowns), 4),
                }
            )
            if placement != "dedicated":
                worst = max(slowdowns)
                run.log(
                    f"  jobmix {algorithm} {placement}: makespan "
                    f"{makespan:.4f}s ({makespan / ded_makespan:.3f}x "
                    f"dedicated), worst slowdown {worst:.3f}x"
                )
    return rows, summary, cell_for


def _mix_report(run: ScenarioRun, rows, summary) -> Report:
    summary_name = f"{run.scenario.output}_summary"
    text = (
        render_rows(rows, run.scenario.title)
        + "\n"
        + render_rows(summary, "placement summary (makespan + fairness)")
    )
    return Report(rows=rows, text=text, tables={summary_name: summary})


@register_analysis("jobmix")
def _jobmix(run: ScenarioRun) -> Report:
    mix: JobMixScenario = run.param("mix")
    rows, summary, _ = _mix_tables(run, mix)
    return _mix_report(run, rows, summary)


@register_analysis("jobmix_starvation")
def _jobmix_starvation(run: ScenarioRun) -> Report:
    """The oversubscribed-rack starvation study (ROADMAP follow-up to
    ``jobmix_crosstalk``): the standard JCT/fairness tables, joined with
    the :mod:`repro.obs` per-job diagnostics — each (algorithm,
    placement) cell is traced for one measured iteration and its per-job
    transfer-wait starvation ratios, peak link utilization and priority
    inversions land in the tables. Answers "does one job's TAC starve a
    neighbour under skewed 4-job mixes?" with queue-level evidence
    rather than end-time inference.
    """
    from ..obs.capture import trace_cell

    mix: JobMixScenario = run.param("mix")
    rows, summary, cell_for = _mix_tables(run, mix)
    by_key = {(r["algorithm"], r["placement"], r["job"]): r for r in rows}
    for algorithm in mix.algorithms:
        for placement in mix.all_placements():
            cap = trace_cell(cell_for(algorithm, placement))
            trace = cap.trace
            for stats in trace.job_stats():
                row = by_key[(algorithm, placement, stats["job"])]
                row["mean_transfer_wait_s"] = round(
                    stats["mean_transfer_wait_s"], 6
                )
                row["starvation"] = round(stats["starvation"], 4)
            _, util = trace.link_utilization(bins=40)
            peak = max(float(u.max()) for u in util.values())
            srow = next(
                s
                for s in summary
                if s["algorithm"] == algorithm and s["placement"] == placement
            )
            srow["max_starvation"] = round(
                max(s["starvation"] for s in trace.job_stats()), 4
            )
            srow["peak_link_util"] = round(peak, 4)
            srow["priority_inversions"] = trace.out_of_order_handoffs
            if placement != "dedicated":
                run.log(
                    f"  starvation {algorithm} {placement}: max "
                    f"{srow['max_starvation']:.2f}x mean wait, peak link "
                    f"util {peak:.2f}"
                )
    return _mix_report(run, rows, summary)


# ======================================================================
# Registered studies
# ======================================================================

#: Two identical PS jobs; the second arrives while the first is
#: mid-iteration, so its parameter broadcasts land inside the other
#: job's communication phase and the shared NICs serialize them.
#: n_hosts=6 gives ``spread`` one host per device (full separation).
CONTENTION_MIX = JobMixScenario(
    jobs=(
        JobSpec("AlexNet v2", n_workers=2, n_ps=1),
        JobSpec("AlexNet v2", n_workers=2, n_ps=1, arrival=6.0),
    ),
    placements=("packed", "spread"),
    platform="envC",
    algorithms=("baseline",),
    n_hosts=6,
)

#: A TIC job and a TAC job sharing hosts: the algorithm axis compares
#: no scheduling, one algorithm for both jobs, and per-job dispatch
#: ("mix" — VGG under TIC, Inception under TAC).
CROSSTALK_MIX = JobMixScenario(
    jobs=(
        JobSpec("VGG-16", n_workers=2, n_ps=1, algorithm="tic"),
        JobSpec("Inception v3", n_workers=2, n_ps=1, algorithm="tac", arrival=2.0),
    ),
    placements=("packed",),
    platform="envC",
    algorithms=("baseline", "tic", "tac", "mix"),
)

register_scenario(Scenario(
    name="jobmix_contention",
    title="Job-mix contention: packed vs spread placement on shared NICs (envC)",
    output="jobmix_contention",
    analyze="jobmix",
    backends=("jobmix",),
    platforms=("envC",),
    models=("AlexNet v2",),
    algorithms=("baseline",),
    aux_outputs=("jobmix_contention_summary",),
    extras_csv=(("summary_csv", "jobmix_contention_summary"),),
    params=(("mix", CONTENTION_MIX),),
    tags=("jobmix", "extension"),
))

#: Four jobs, twelve logical devices, twelve host slots on two racks
#: (4+2 hosts at rack_size=4): zero headroom, so every placement except
#: ``dedicated`` co-locates somebody. The mix is deliberately skewed —
#: two communication-heavy VGG-16 TAC jobs bracketing two lighter TIC
#: jobs, arrivals staggered — the shape the ROADMAP flagged as the open
#: starvation question after ``jobmix_crosstalk`` cleared 2-job mixes.
STARVATION_MIX = JobMixScenario(
    jobs=(
        JobSpec("VGG-16", n_workers=2, n_ps=1, algorithm="tac"),
        JobSpec("Inception v1", n_workers=2, n_ps=1, algorithm="tic", arrival=1.0),
        JobSpec("AlexNet v2", n_workers=2, n_ps=1, algorithm="tic", arrival=2.0),
        JobSpec("VGG-16", n_workers=2, n_ps=1, algorithm="tac", arrival=3.0),
    ),
    placements=("packed", "rack_aware"),
    platform="envC",
    algorithms=("baseline", "mix"),
    n_hosts=6,
)

register_scenario(Scenario(
    name="jobmix_crosstalk",
    title="Job-mix crosstalk: TIC and TAC jobs co-scheduled (envC)",
    output="jobmix_crosstalk",
    analyze="jobmix",
    backends=("jobmix",),
    platforms=("envC",),
    models=("VGG-16", "Inception v3"),
    algorithms=("baseline", "tic", "tac"),
    aux_outputs=("jobmix_crosstalk_summary",),
    extras_csv=(("summary_csv", "jobmix_crosstalk_summary"),),
    params=(("mix", CROSSTALK_MIX),),
    tags=("jobmix", "extension"),
))

register_scenario(Scenario(
    name="jobmix_starvation",
    title="Job-mix starvation: four skewed jobs on an oversubscribed rack (envC)",
    output="jobmix_starvation",
    analyze="jobmix_starvation",
    backends=("jobmix",),
    platforms=("envC",),
    models=("VGG-16", "Inception v1", "AlexNet v2"),
    algorithms=("baseline", "tic", "tac"),
    aux_outputs=("jobmix_starvation_summary",),
    extras_csv=(("summary_csv", "jobmix_starvation_summary"),),
    params=(("mix", STARVATION_MIX),),
    tags=("jobmix", "extension", "observability"),
))
