"""Declarative scenario descriptions, validated at construction.

A :class:`Scenario` is *data*: which communication backends, platforms,
models and scheduling algorithms a study touches, an optional
:class:`Grid` (the declarative slice of the evaluation grid the generic
engine expands and sweeps), default parameters callers may override, and
the *name* of the analysis callback that turns sweep results into the
scenario's tables. Construction validates every name against the live
registries — the :mod:`repro.backends` registry, the
:mod:`repro.timing` platform table, the model zoo and the wizard's
algorithm list — so a typo fails at import/definition time with the
accepted values spelled out, not deep inside a sweep.

Axis values understand three sentinel forms so one definition serves
every scale:

* ``"scale"`` — resolve from the run's :class:`~repro.api.context.Scale`
  (``models``/``workers``/``ps`` axes);
* ``"envc"`` / ``"zoo"`` — the Fig. 13 envC model subset / every Table 1
  model;
* ``"$name"`` — resolve from the scenario's (possibly overridden)
  parameters, e.g. ``algorithms=("$algorithm",)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from ..core.wizard import ALGORITHMS
from ..models import ENVC_MODEL_NAMES, MODEL_NAMES
from ..models.zoo import EXTRA_MODEL_BUILDERS
from ..sweep.spec import GridSpec, SimCell
from ..timing import PLATFORMS
from . import registry
from .context import Scale


class ScenarioError(ValueError):
    """A scenario definition (or parameter override) failed validation."""


#: Model names scenario definitions may reference.
KNOWN_MODELS: tuple[str, ...] = MODEL_NAMES + tuple(EXTRA_MODEL_BUILDERS)

_MODEL_SENTINELS = ("scale", "envc", "zoo")


def _interp(value, params: Mapping[str, object]):
    """Resolve a ``"$name"`` axis entry from the bound parameters."""
    if isinstance(value, str) and value.startswith("$"):
        name = value[1:]
        try:
            return params[name]
        except KeyError:
            raise ScenarioError(
                f"axis references parameter {name!r} which the scenario "
                f"does not declare (params: {sorted(params)})"
            ) from None
    return value


def _as_tuple(value) -> tuple:
    if isinstance(value, (list, tuple)):
        return tuple(value)
    return (value,)


@dataclass(frozen=True)
class Grid:
    """Declarative slice of the evaluation grid.

    Resolved against a (scale, params) pair into the exact
    :class:`~repro.sweep.spec.SimCell` list the legacy drivers built —
    same axes, same :class:`~repro.sweep.spec.GridSpec` nesting order —
    so results and CSVs are byte-identical through the scenario path.

    ``ps`` accepts ``"ratio"`` (Fig. 7's PS:workers = 1:4 policy),
    ``"scale"``, an int or a tuple. ``compare_baseline`` selects
    ``run_speedups`` (each cell paired with its baseline twin) over plain
    ``run_cells``. ``cap_workers_quick`` reproduces Fig. 9's quirk of
    clamping its worker count to the quick scale's maximum — only at the
    named ``quick`` scale, exactly as the legacy driver did.
    """

    models: object = "scale"
    workloads: tuple[str, ...] = ("training",)
    workers: object = "scale"
    ps: object = "ratio"
    algorithms: tuple[str, ...] = ("baseline",)
    platforms: tuple[str, ...] = ("envG",)
    batch_factors: tuple[float, ...] = (1.0,)
    sharding: str = "greedy"
    #: SimConfig overrides applied on top of the context's defaults;
    #: values may be ``"$param"`` references.
    sim: tuple[tuple[str, object], ...] = ()
    compare_baseline: bool = True
    cap_workers_quick: bool = False

    # -- resolution -----------------------------------------------------
    def resolve_models(self, scale: Scale, params: Mapping) -> tuple[str, ...]:
        models = _interp(self.models, params)
        if models == "scale":
            return scale.models
        if models == "envc":
            return ENVC_MODEL_NAMES
        if models == "zoo":
            return MODEL_NAMES
        return _as_tuple(models)

    def resolve_workers(self, scale: Scale, params: Mapping) -> tuple[int, ...]:
        workers = _interp(self.workers, params)
        counts = scale.worker_counts if workers == "scale" else _as_tuple(workers)
        if self.cap_workers_quick and scale.name == "quick":
            cap = max(scale.worker_counts)
            counts = tuple(min(w, cap) for w in counts)
        return counts

    def resolve(
        self, scale: Scale, params: Mapping, make_config: Callable
    ) -> list[SimCell]:
        """Expand to cells: ``make_config(**sim_overrides)`` builds the
        shared :class:`~repro.sim.config.SimConfig` (normally
        ``Context.sim_config``)."""
        ps = _interp(self.ps, params)
        spec = GridSpec(
            models=self.resolve_models(scale, params),
            workloads=self.workloads,
            worker_counts=self.resolve_workers(scale, params),
            ps_counts=(
                scale.ps_counts if ps == "scale"
                else (1,) if ps == "ratio"  # unused: ps_from_workers wins
                else _as_tuple(ps)
            ),
            ps_from_workers=ps == "ratio",
            algorithms=tuple(_interp(a, params) for a in self.algorithms),
            platforms=self.platforms,
            batch_factors=self.batch_factors,
            sharding=self.sharding,
        )
        overrides = {k: _interp(v, params) for k, v in self.sim}
        return spec.cells(make_config(**overrides))

    # -- validation -----------------------------------------------------
    def validate(self, params: Mapping) -> None:
        _validate_models(self.models, where="grid.models")
        _validate_platforms(self.platforms, where="grid.platforms")
        for algorithm in self.algorithms:
            if isinstance(algorithm, str) and algorithm.startswith("$"):
                continue
            _validate_algorithm(algorithm, where="grid.algorithms")
        for axis, value in (
            ("models", self.models),
            ("workers", self.workers),
            ("ps", self.ps),
            ("algorithms", self.algorithms),
        ):
            for entry in _as_tuple(value):
                if isinstance(entry, str) and entry.startswith("$"):
                    if entry[1:] not in params:
                        raise ScenarioError(
                            f"grid.{axis} references parameter "
                            f"{entry[1:]!r} which the scenario does not "
                            f"declare (params: {sorted(params)})"
                        )


def _validate_models(models, *, where: str) -> None:
    if isinstance(models, str):
        if models.startswith("$") or models in _MODEL_SENTINELS:
            return
        models = (models,)
    for name in _as_tuple(models):
        if name not in KNOWN_MODELS:
            raise ScenarioError(
                f"{where}: unknown model {name!r}; known models: "
                f"{list(KNOWN_MODELS)}"
            )


def _validate_platforms(platforms, *, where: str) -> None:
    for name in _as_tuple(platforms):
        if name not in PLATFORMS:
            raise ScenarioError(
                f"{where}: unknown platform {name!r}; available: "
                f"{sorted(PLATFORMS)}"
            )


def _validate_algorithm(name: str, *, where: str) -> None:
    if name not in ALGORITHMS:
        raise ScenarioError(
            f"{where}: unknown algorithm {name!r}; one of {ALGORITHMS}"
        )


def _validate_backends(backends: tuple[str, ...]) -> None:
    from ..backends import backends as comm_backends

    known = comm_backends()
    for name in backends:
        if name not in known:
            raise ScenarioError(
                f"unknown communication backend {name!r}; registered: "
                f"{sorted(known)}"
            )


@dataclass(frozen=True)
class Scenario:
    """One named, declarative study (a table/figure of the paper, or an
    extension). See the module docstring; construction validates every
    referenced name against the live registries."""

    name: str
    title: str
    #: primary CSV stem — ``ResultSet.to_csv`` writes ``<output>.csv``.
    output: str
    #: name of the registered analysis callback executing/tabulating it.
    analyze: str
    #: communication backends exercised (registry-validated).
    backends: tuple[str, ...] = ("ps",)
    platforms: tuple[str, ...] = ("envG",)
    #: models touched: sentinel ("scale"/"envc"/"zoo"), tuple, or () when
    #: the scenario simulates no cluster (e.g. Fig. 8's SGD substrate).
    models: object = "scale"
    #: algorithms exercised beyond what the grid declares (listing/meta).
    algorithms: tuple[str, ...] = ()
    grid: Optional[Grid] = None
    #: default parameters; ``session.run(name, **overrides)`` rebinds.
    params: tuple[tuple[str, object], ...] = ()
    #: auxiliary output stems the analysis emits as extra tables.
    aux_outputs: tuple[str, ...] = ()
    #: legacy extras keys aliasing written table paths (``save`` fills
    #: them): ((extras_key, table_stem), ...).
    extras_csv: tuple[tuple[str, str], ...] = ()
    tags: tuple[str, ...] = field(default=(), compare=False)

    def __post_init__(self) -> None:
        params = dict(self.params)
        _validate_backends(self.backends)
        _validate_platforms(self.platforms, where=f"scenario {self.name!r}")
        _validate_models(self.models, where=f"scenario {self.name!r}")
        for algorithm in self.algorithms:
            _validate_algorithm(algorithm, where=f"scenario {self.name!r}")
        if not registry.has_analysis(self.analyze):
            raise ScenarioError(
                f"scenario {self.name!r} references unregistered analysis "
                f"callback {self.analyze!r}; register it with "
                f"repro.api.register_analysis({self.analyze!r}) first"
            )
        if self.grid is not None:
            self.grid.validate(params)
        for key, table in self.extras_csv:
            if table != self.output and table not in self.aux_outputs:
                raise ScenarioError(
                    f"scenario {self.name!r}: extras_csv alias {key!r} "
                    f"points at undeclared table {table!r}"
                )

    # -- parameters -----------------------------------------------------
    def bind(self, **overrides) -> dict:
        """Merge caller overrides over the declared defaults. Unknown
        keys fail with the accepted names; ``model`` values are checked
        against the zoo."""
        params = dict(self.params)
        unknown = sorted(set(overrides) - set(params))
        if unknown:
            raise ScenarioError(
                f"scenario {self.name!r} accepts no parameter(s) "
                f"{unknown}; accepted: {sorted(params) or '(none)'}"
            )
        params.update(overrides)
        if "model" in params:
            _validate_models(
                params["model"], where=f"scenario {self.name!r} param 'model'"
            )
        if "algorithm" in params:
            _validate_algorithm(
                params["algorithm"],
                where=f"scenario {self.name!r} param 'algorithm'",
            )
        return params
