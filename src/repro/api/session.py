"""The Session facade: one object owning runner, cache and lifecycle.

A :class:`Session` is the stable programmatic entry point to the whole
pipeline::

    from repro.api import Session

    with Session(scale="quick", jobs=2) as session:
        rs = session.run("fig7")            # a registered scenario
        print(rs.to_table())                # rows are values...
        rs.to_csv("results")                # ...writing CSV is explicit
        print(rs.provenance.as_dict())      # engine rev, kernel, cache

It wraps an execution :class:`~repro.api.context.Context` — the shared
:class:`~repro.sweep.SweepRunner` with its persistent worker pool,
shared-memory cores and on-disk result cache — and guarantees cleanup on
``close()``/``__exit__`` (the runner's ``atexit`` hook is the backstop).
Scenarios may be names from the registry or ad-hoc
:class:`~repro.api.scenario.Scenario` objects; either way execution goes
through the one generic engine, so a custom scenario gets caching,
parallelism and provenance for free. This seam (``Session.run`` over a
process-agnostic cell/cache layer) is where the ROADMAP's distributed
multi-host executor will plug in.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from .context import SCALES, Context, Scale, make_context
from .engine import execute_scenario
from .registry import scenario as get_scenario
from .registry import scenario_names
from .resultset import ResultSet
from .scenario import Scenario


class Session:
    """Owns the execution context for one or more scenario runs.

    Parameters
    ----------
    scale:
        ``"quick"`` / ``"full"``, a custom :class:`Scale`, or ``None``
        to consult ``REPRO_SCALE``/``REPRO_FULL`` (like the CLI).
    jobs:
        Worker processes for the sweep runner; ``None`` consults
        ``REPRO_JOBS`` (default 1).
    cache:
        ``True`` — the default on-disk cache under
        ``<results_dir>/.sweep-cache`` (``REPRO_NO_CACHE=1`` still
        disables it, like the CLI); ``False`` — no cache; a path — that
        directory, unconditionally (an explicit argument defeats the
        env toggle).
    results_dir, seed, rerun, verbose, cache_max_mb:
        As on the CLI; ``results_dir`` is also the default target of
        :meth:`save`.
    """

    def __init__(
        self,
        *,
        scale: Union[str, Scale, None] = "quick",
        results_dir: str = "results",
        seed: int = 0,
        jobs: Optional[int] = None,
        cache: Union[bool, str, os.PathLike] = True,
        rerun: bool = False,
        verbose: bool = False,
        cache_max_mb: Optional[float] = None,
    ) -> None:
        kwargs = dict(
            results_dir=results_dir,
            seed=seed,
            jobs=jobs,
            rerun=rerun,
            verbose=verbose,
        )
        if cache_max_mb is not None:
            # only pass an explicit cap: make_context falls back to
            # $REPRO_CACHE_MAX_MB when the kwarg is absent
            kwargs["cache_max_mb"] = cache_max_mb
        if cache is False:
            kwargs["use_cache"] = False
        elif cache is not True:
            # an explicit directory defeats the ambient REPRO_NO_CACHE=1
            # default make_context would otherwise apply
            kwargs["cache_dir"] = os.fspath(cache)
            kwargs["use_cache"] = True
        if isinstance(scale, Scale):
            ctx = make_context(full=False, **kwargs)
            ctx.scale = scale
        elif scale is None:
            ctx = make_context(full=None, **kwargs)
        else:
            try:
                named = SCALES[scale]
            except KeyError:
                raise ValueError(
                    f"unknown scale {scale!r}; expected one of "
                    f"{sorted(SCALES)} or a Scale instance"
                ) from None
            ctx = make_context(full=named.name == "full", **kwargs)
            ctx.scale = named
        self._ctx = ctx

    # -- lifecycle ------------------------------------------------------
    @property
    def context(self) -> Context:
        """The underlying execution context (advanced embedders)."""
        return self._ctx

    @property
    def scale(self) -> Scale:
        return self._ctx.scale

    @property
    def results_dir(self) -> str:
        return self._ctx.results_dir

    @property
    def sweep(self):
        """The session's shared sweep runner."""
        return self._ctx.sweep

    def close(self) -> None:
        """Apply the cache size cap (``cache_max_mb`` — no-op without
        one), then shut the worker pool down and unlink shared-memory
        cores. Idempotent; also runs from ``with`` exits."""
        try:
            self._ctx.gc_cache()
        finally:
            self._ctx.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution ------------------------------------------------------
    def run(
        self, scenario: Union[str, Scenario], /, **overrides
    ) -> ResultSet:
        """Execute one scenario (registry name or Scenario object) and
        return its :class:`~repro.api.resultset.ResultSet`. Keyword
        overrides rebind the scenario's declared parameters, e.g.
        ``session.run("fig12", model="VGG-16")``."""
        if isinstance(scenario, str):
            scenario = get_scenario(scenario)
        return execute_scenario(self._ctx, scenario, **overrides)

    def run_all(
        self, names: Optional[list[str]] = None
    ) -> dict[str, ResultSet]:
        """Run several scenarios (``None``: the whole registry in
        presentation order; an explicit empty list runs nothing);
        returns name -> ResultSet."""
        if names is None:
            names = list(scenario_names())
        return {name: self.run(name) for name in names}

    def save(self, result: ResultSet) -> dict[str, str]:
        """Write a result's tables under this session's results dir."""
        return result.save(self._ctx.results_dir)

    def scenarios(self) -> tuple[str, ...]:
        """Registered scenario names, in presentation order."""
        return scenario_names()

    def __repr__(self) -> str:  # pragma: no cover - convenience
        ctx = self._ctx
        return (
            f"Session(scale={ctx.scale.name!r}, jobs={ctx.jobs}, "
            f"results_dir={ctx.results_dir!r}, cache={ctx.use_cache})"
        )
