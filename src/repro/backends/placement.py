"""Placement policies: mapping job-mix logical devices onto shared hosts.

A job mix (:mod:`repro.sim.jobmix`) names its devices in per-job
namespaces (``j0/worker:1``, ``j1/ps:0``). A *placement policy* assigns
each logical device a **host**; devices sharing a host share that host's
NIC resources in the engine (their transfers become TCP connections
round-robining on one NIC), which is how co-scheduled jobs contend for
network bandwidth. Compute engines stay per logical device — the model is
hosts with enough cores/accelerators per slot, shared commodity NICs.

The physical cluster is ``n_hosts`` uniform hosts named ``host:N`` with
``slots_per_host`` device slots each, optionally grouped into racks of
``rack_size`` hosts (the ``rack_aware`` policy). Policies:

* ``dedicated`` — the identity map: every logical device is its own host
  (role NIC capacities apply — a ``j0/ps:0`` keeps its fat PS NIC). A
  1-job mix on ``dedicated`` is byte-identical to the single-job path.
* ``packed`` — fill hosts sequentially in device order, using the
  minimal ``ceil(total / slots_per_host)`` hosts (maximum co-location).
* ``spread`` — give each job fresh empty hosts while any remain, so jobs
  never co-locate until the cluster forces them to; falls back to the
  least-loaded hosts once empty ones run out.
* ``rack_aware`` — per job, pick the rack with the most free slots and
  pack the job inside it (rack-local traffic; jobs land in different
  racks while capacity allows).

Policies are deterministic pure functions of their inputs, registered in
a small registry mirroring the backend/scenario registries, with difflib
near-match suggestions on unknown names.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Callable, Sequence

#: device slots per shared host unless the mix spec overrides it.
DEFAULT_SLOTS_PER_HOST = 2

#: hosts per rack unless the mix spec overrides it.
DEFAULT_RACK_SIZE = 4


class PlacementError(ValueError):
    """A placement request that cannot be satisfied (not enough slots)."""


class UnknownPlacementError(KeyError):
    """Lookup of a placement policy name that is not registered."""

    def __init__(self, name: str, known: tuple[str, ...]):
        hints = difflib.get_close_matches(name, known, n=3, cutoff=0.4)
        message = (
            f"unknown placement policy {name!r}; available: {', '.join(known)}"
        )
        if hints:
            message += f" — did you mean {' or '.join(map(repr, hints))}?"
        super().__init__(message)
        self.name = name
        self.hints = tuple(hints)


@dataclass(frozen=True)
class PlacementPolicy:
    """One registered policy.

    ``fn(devices_by_job, n_hosts, slots_per_host, rack_size)`` returns a
    ``device -> host`` mapping covering every device of every job.
    """

    name: str
    description: str
    fn: Callable[[Sequence[Sequence[str]], int, int, int], dict[str, str]]


_PLACEMENTS: dict[str, PlacementPolicy] = {}


def register_placement(policy: PlacementPolicy) -> None:
    """Register a policy; later registrations replace earlier ones."""
    _PLACEMENTS[policy.name] = policy


def placements() -> dict[str, PlacementPolicy]:
    """Registered placement policies by name."""
    return dict(_PLACEMENTS)


def get_placement(name: str) -> PlacementPolicy:
    """Look up a policy by name; unknown names raise
    :class:`UnknownPlacementError` with near-match suggestions."""
    try:
        return _PLACEMENTS[name]
    except KeyError:
        raise UnknownPlacementError(name, tuple(_PLACEMENTS)) from None


def place_jobs(
    devices_by_job: Sequence[Sequence[str]],
    policy: str,
    *,
    n_hosts: int = 0,
    slots_per_host: int = DEFAULT_SLOTS_PER_HOST,
    rack_size: int = DEFAULT_RACK_SIZE,
) -> dict[str, str]:
    """Run ``policy`` over the jobs' device lists.

    ``n_hosts=0`` sizes the cluster automatically to the minimum feasible
    host count ``ceil(total_devices / slots_per_host)`` (pass an explicit
    larger count to give ``spread``/``rack_aware`` room to separate jobs).
    Raises :class:`PlacementError` when the devices do not fit.
    """
    total = sum(len(devs) for devs in devices_by_job)
    if slots_per_host <= 0:
        raise PlacementError(f"slots_per_host must be positive, got {slots_per_host}")
    if rack_size <= 0:
        raise PlacementError(f"rack_size must be positive, got {rack_size}")
    if n_hosts <= 0:
        n_hosts = -(-total // slots_per_host) if total else 0
    if total > n_hosts * slots_per_host:
        raise PlacementError(
            f"{total} logical devices do not fit on {n_hosts} hosts x "
            f"{slots_per_host} slots"
        )
    mapping = get_placement(policy).fn(
        devices_by_job, n_hosts, slots_per_host, rack_size
    )
    return mapping


# ----------------------------------------------------------------------
# built-in policies
# ----------------------------------------------------------------------
def _dedicated(devices_by_job, n_hosts, slots_per_host, rack_size):
    # Identity: each logical device is its own (role-named) host, so the
    # engine's NIC naming, channel structure and capacities are exactly
    # the single-job ones. The n_hosts/slots budget is ignored.
    return {d: d for devs in devices_by_job for d in devs}


def _packed(devices_by_job, n_hosts, slots_per_host, rack_size):
    mapping: dict[str, str] = {}
    slot = 0
    for devs in devices_by_job:
        for d in devs:
            mapping[d] = f"host:{slot // slots_per_host}"
            slot += 1
    return mapping


def _spread(devices_by_job, n_hosts, slots_per_host, rack_size):
    load = [0] * n_hosts
    owners: list[set[int]] = [set() for _ in range(n_hosts)]
    mapping: dict[str, str] = {}
    for j, devs in enumerate(devices_by_job):
        for d in devs:
            # fresh empty host first (never co-locate while one remains),
            # else this job's own least-loaded host, else the globally
            # least-loaded host with a free slot; index breaks ties.
            best = -1
            best_key = None
            for h in range(n_hosts):
                if load[h] >= slots_per_host:
                    continue
                if load[h] == 0:
                    key = (0, 0, h)
                elif owners[h] == {j}:
                    key = (1, load[h], h)
                else:
                    key = (2, load[h], h)
                if best_key is None or key < best_key:
                    best, best_key = h, key
            mapping[d] = f"host:{best}"
            load[best] += 1
            owners[best].add(j)
    return mapping


def _rack_aware(devices_by_job, n_hosts, slots_per_host, rack_size):
    n_racks = -(-n_hosts // rack_size)
    load = [0] * n_hosts
    mapping: dict[str, str] = {}

    def rack_hosts(r):
        return range(r * rack_size, min((r + 1) * rack_size, n_hosts))

    for devs in devices_by_job:
        # The whole job targets one rack — the one with the most free
        # slots (ties -> lowest rack index) — packing host by host inside
        # it; only overflow spills into the next-best racks.
        remaining = list(devs)
        while remaining:
            best_rack = -1
            best_free = 0
            for r in range(n_racks):
                free = sum(slots_per_host - load[h] for h in rack_hosts(r))
                if free > best_free:
                    best_rack, best_free = r, free
            if best_rack < 0:  # pragma: no cover - guarded by place_jobs
                raise PlacementError("rack_aware ran out of slots")
            for h in rack_hosts(best_rack):
                while remaining and load[h] < slots_per_host:
                    mapping[remaining.pop(0)] = f"host:{h}"
                    load[h] += 1
    return mapping


register_placement(PlacementPolicy(
    name="dedicated",
    description="every logical device on its own host (no contention)",
    fn=_dedicated,
))
register_placement(PlacementPolicy(
    name="packed",
    description="fill hosts sequentially with minimal host count",
    fn=_packed,
))
register_placement(PlacementPolicy(
    name="spread",
    description="jobs on fresh hosts while empty hosts remain",
    fn=_spread,
))
register_placement(PlacementPolicy(
    name="rack_aware",
    description="each job packed into the rack with the most free slots",
    fn=_rack_aware,
))
