"""Communication-backend registry: spec type -> graph builder + wizard.

Three backends ship: the parameter-server architecture
(:class:`~repro.ps.cluster.ClusterSpec`), the collective all-reduce
architecture (:class:`~repro.collectives.CollectiveSpec`), and the
multi-job co-scheduling union (:class:`~repro.sim.jobmix.JobMixSpec`),
which composes the other two under per-job namespaces. A spec object
fully names a cluster shape; this module dispatches on its *type* so the
simulation entry points (:mod:`repro.sim.runner`), the sweep runner and
the experiment drivers stay backend-agnostic. Third-party backends
register with :func:`register_backend`.

The module also owns the **wizard memo** (ROADMAP item): an in-process
cache of ordering-wizard passes keyed by the *reference projection* of a
spec — the fields the reference partition actually depends on. A PS
reference depends on (workload, n_ps, sharding) but not worker count; a
collective reference depends on nothing but the model. One TAC trace
therefore serves a whole worker-scaling sweep instead of being recomputed
per cell, the same way simulated cells are cached on disk.

It likewise owns the **graph memo**: an in-process cache of assembled
cluster DAGs keyed by (model structural fingerprint, spec). A sweep
group already builds its graph once (and compiles the engine's
:class:`~repro.sim.engine.CompiledCore` arrays once — see
:func:`repro.sim.runner.simulate_cell_group`), but groups that differ
only in platform or simulation knobs describe the *same* DAG; the memo
lets them share it instead of re-assembling tens of thousands of ops.
Consumers treat memoized graphs as immutable — the engine never writes
to a ClusterGraph, and callers that want to mutate one must build it
directly via their backend's ``build_graph``.
"""

from __future__ import annotations

import dataclasses
import inspect
from dataclasses import dataclass
from typing import Callable

#: Most entries a wizard memo holds before evicting its oldest (a
#: schedule is a few KB; sweeps touch far fewer distinct references).
_MEMO_CAP = 256

#: Most assembled cluster DAGs kept in-process. Graphs are large (tens of
#: thousands of ops for deep models at scale), so the cap is small — the
#: memo targets back-to-back groups of one sweep, not a session's history.
_GRAPH_MEMO_CAP = 8


@dataclass(frozen=True)
class CommBackend:
    """One communication architecture the simulator can execute.

    ``build_graph(ir, spec)`` assembles the one-iteration cluster DAG;
    ``prepare_schedule(ir, spec, algorithm, platform, *, trace_runs,
    seed)`` runs the ordering wizard; ``schedule_key(spec)`` projects a
    spec onto the fields its reference partition depends on (the wizard
    memo key — coarser is better, wrong is catastrophic).
    """

    name: str
    spec_type: type
    build_graph: Callable
    prepare_schedule: Callable
    schedule_key: Callable

    def describe(self) -> str:
        return f"{self.name} ({self.spec_type.__name__})"


_BACKENDS: dict[str, CommBackend] = {}
_BY_SPEC_TYPE: dict[type, CommBackend] = {}
_defaults_loaded = False


def register_backend(backend: CommBackend) -> None:
    """Register a backend; later registrations replace earlier ones.

    The built-in backends are loaded first, so a third-party registration
    can never suppress (only deliberately replace) ``ps``/``allreduce``.
    """
    _ensure_defaults()
    _BACKENDS[backend.name] = backend
    _BY_SPEC_TYPE[backend.spec_type] = backend


def _ps_prepare(ir, spec, algorithm, platform, *, trace_runs: int = 5, seed: int = 0):
    from ..core.wizard import compute_schedule
    from ..ps.reference import build_reference_partition
    from ..timing import estimate_time_oracle

    reference = build_reference_partition(
        ir, workload=spec.workload, n_ps=spec.n_ps, sharding=spec.sharding
    )
    oracle = None
    if algorithm == "tac":
        oracle = estimate_time_oracle(
            reference.graph, platform, runs=trace_runs, seed=seed
        )
    return compute_schedule(reference, algorithm, oracle=oracle, seed=seed)


def _ensure_defaults() -> None:
    global _defaults_loaded
    if _defaults_loaded:
        return
    _defaults_loaded = True  # set first: the registrations below re-enter
    from ..collectives import (
        CollectiveSpec,
        build_collective_graph,
        prepare_collective_schedule,
        reference_schedule_key,
    )
    from ..ps.cluster import ClusterSpec, build_cluster_graph
    from ..sim.jobmix import (
        JobMixSpec,
        build_jobmix_graph,
        jobmix_schedule_key,
        prepare_jobmix_schedule,
    )

    register_backend(
        CommBackend(
            name="ps",
            spec_type=ClusterSpec,
            build_graph=build_cluster_graph,
            prepare_schedule=_ps_prepare,
            schedule_key=lambda spec: (
                "ps", spec.workload, spec.n_ps, spec.sharding
            ),
        )
    )
    register_backend(
        CommBackend(
            name="allreduce",
            spec_type=CollectiveSpec,
            build_graph=build_collective_graph,
            prepare_schedule=prepare_collective_schedule,
            schedule_key=lambda spec: reference_schedule_key(spec),
        )
    )
    register_backend(
        CommBackend(
            name="jobmix",
            spec_type=JobMixSpec,
            build_graph=build_jobmix_graph,
            prepare_schedule=prepare_jobmix_schedule,
            schedule_key=jobmix_schedule_key,
        )
    )


def backends() -> dict[str, CommBackend]:
    """Registered backends by name."""
    _ensure_defaults()
    return dict(_BACKENDS)


def spec_fields(spec_type: type) -> tuple[str, ...]:
    """The constructor fields a backend's spec type accepts (for error
    messages and introspection; dataclass specs report their fields,
    anything else its ``__init__`` signature)."""
    if dataclasses.is_dataclass(spec_type):
        return tuple(f.name for f in dataclasses.fields(spec_type))
    params = inspect.signature(spec_type).parameters
    return tuple(name for name in params if name != "self")


def make_spec(backend: str, **kwargs):
    """Construct a cluster spec for a communication backend by name.

    Callers build cluster shapes through this helper so scenario and
    experiment code names backends ('ps', 'allreduce', ...), not spec
    classes. Unknown backend names raise ``KeyError`` listing the
    registered backends; invalid constructor arguments raise ``TypeError``
    naming the spec type's accepted fields (instead of letting the raw
    constructor error escape without that context).
    """
    registry = backends()
    try:
        ctor = registry[backend].spec_type
    except KeyError:
        raise KeyError(
            f"unknown communication backend {backend!r}; "
            f"available: {sorted(registry)}"
        ) from None
    try:
        return ctor(**kwargs)
    except TypeError as exc:
        raise TypeError(
            f"invalid arguments for backend {backend!r}: {exc}; "
            f"{ctor.__name__} accepts fields {list(spec_fields(ctor))}"
        ) from None


def backend_for_spec(spec) -> CommBackend:
    """The backend owning ``spec``'s type; raises ``TypeError`` otherwise."""
    _ensure_defaults()
    backend = _BY_SPEC_TYPE.get(type(spec))
    if backend is None:
        known = ", ".join(b.describe() for b in _BACKENDS.values())
        raise TypeError(
            f"no communication backend registered for {type(spec).__name__}; "
            f"known: {known}"
        )
    return backend


_graph_memo: dict[tuple, object] = {}

#: in-process memo hit/miss counters, read by :mod:`repro.obs.telemetry`
#: into run telemetry. Per-process: pool workers count their own memos
#: (the runner surfaces the driver-process view).
_memo_stats = {
    "graph_memo_hits": 0,
    "graph_memo_misses": 0,
    "wizard_memo_hits": 0,
    "wizard_memo_misses": 0,
}


def memo_stats() -> dict:
    """Snapshot of this process's graph/wizard memo hit-miss counters."""
    return dict(_memo_stats)


def build_comm_graph(ir, spec, **kwargs):
    """Assemble the cluster DAG for ``spec``, whichever backend owns it.

    Plain calls (no builder kwargs) are memoized per (model structural
    fingerprint, spec): two sweep groups over the same DAG — e.g. one
    cluster shape swept across platforms — share one assembled graph.
    The returned graph must be treated as read-only; pass builder kwargs
    (or call the backend's ``build_graph`` directly) to get a private,
    mutable instance.
    """
    backend = backend_for_spec(spec)
    if kwargs:
        return backend.build_graph(ir, spec, **kwargs)
    key = (ir.structural_fingerprint(), spec)
    graph = _graph_memo.get(key)
    if graph is None:
        _memo_stats["graph_memo_misses"] += 1
        graph = backend.build_graph(ir, spec)
        while len(_graph_memo) >= _GRAPH_MEMO_CAP:
            _graph_memo.pop(next(iter(_graph_memo)))
        _graph_memo[key] = graph
    else:
        _memo_stats["graph_memo_hits"] += 1
    return graph


def graph_memo_size() -> int:
    """Assembled graphs currently memoized (diagnostics/tests)."""
    return len(_graph_memo)


def clear_graph_memo() -> None:
    """Drop all memoized cluster graphs (tests)."""
    _graph_memo.clear()


# ----------------------------------------------------------------------
# Wizard memo
# ----------------------------------------------------------------------

_schedule_memo: dict[tuple, object] = {}


def prepare_comm_schedule(
    ir,
    spec,
    algorithm: str,
    platform,
    *,
    trace_runs: int = 5,
    seed: int = 0,
):
    """Backend-dispatched, memoized ordering-wizard pass.

    The memo key combines the model's structural fingerprint (a content
    hash of the full IR — nodes, wiring, FLOPs, parameter census — so two
    different models can never collide), the backend's reference
    projection of ``spec``, and the wizard knobs. Results are
    deterministic in the key, so reuse is exact; only the ``meta``
    wall-clock diagnostics of a reused schedule reflect the original run.
    """
    backend = backend_for_spec(spec)
    key = (
        ir.structural_fingerprint(),
        backend.schedule_key(spec),
        algorithm,
        platform,
        trace_runs,
        seed,
    )
    schedule = _schedule_memo.get(key)
    if schedule is None:
        _memo_stats["wizard_memo_misses"] += 1
        schedule = backend.prepare_schedule(
            ir, spec, algorithm, platform, trace_runs=trace_runs, seed=seed
        )
        while len(_schedule_memo) >= _MEMO_CAP:
            _schedule_memo.pop(next(iter(_schedule_memo)))
        _schedule_memo[key] = schedule
    else:
        _memo_stats["wizard_memo_hits"] += 1
    return schedule


def schedule_memo_size() -> int:
    """Entries currently memoized (diagnostics/tests)."""
    return len(_schedule_memo)


def clear_schedule_memo() -> None:
    """Drop all memoized wizard passes (tests)."""
    _schedule_memo.clear()
