"""Lower a :class:`~repro.faults.plan.FaultPlan` onto a compiled core.

:func:`compile_fault_plan` resolves every event's device/link names
against the core (``FaultPlanError`` with a ``difflib`` did-you-mean on
unknown names) and produces, per compute resource and per wire channel,
a **sorted, disjoint** list of ``(w0, w1, rate)`` windows:

* for compute resources ``rate`` is the fraction of nominal speed
  (``StragglerBurst(factor=f)`` contributes ``1/f``; ``HostFailure``
  contributes ``0``);
* for wire channels ``rate`` is the fraction of nominal bandwidth
  (``LinkDegradation``/``NicFlap`` contribute their ``factor``;
  ``HostFailure`` contributes ``0``).

Overlapping windows on one entity compose multiplicatively (a straggler
burst during a host failure is still a dead host) via a boundary sweep;
rate-1 stretches are dropped, so a zero-magnitude plan compiles to no
windows at all — byte-identical to a fault-free run, which the golden
matrix and hypothesis suites pin. The window lists feed both event-loop
kernels' fault evaluators (``_compute_fault_end``/``_chunk_fault_end``)
and the trace layer's fault annotations.
"""

from __future__ import annotations

import difflib

from .plan import FaultPlan, FaultPlanError


def _suggest(name: str, known) -> str:
    hints = difflib.get_close_matches(name, sorted(known), n=1)
    return f" — did you mean {hints[0]!r}?" if hints else ""


def _merge_windows(raw: list) -> list:
    """Compose raw (possibly overlapping) windows into sorted disjoint
    stretches with multiplicative rates; drop rate-1 (no-op) stretches
    and fuse adjacent equal-rate neighbours."""
    bounds = sorted({b for w0, w1, _r in raw for b in (w0, w1)})
    out: list = []
    for a, b in zip(bounds, bounds[1:]):
        rate = 1.0
        for w0, w1, r in raw:
            if w0 <= a and b <= w1:
                rate *= r
        if rate == 1.0:
            continue
        if out and out[-1][1] == a and out[-1][2] == rate:
            out[-1] = (out[-1][0], b, rate)
        else:
            out.append((a, b, rate))
    return out


def compile_fault_plan(plan: FaultPlan, core):
    """Resolve + lower ``plan`` against ``core`` (a
    :class:`repro.sim.engine.CompiledCore`, duck-typed).

    Returns ``(compute_windows, wire_windows)``: lists indexed by
    compute resource id / wire channel id, each entry either ``None``
    (unfaulted — the kernels then execute the literal fault-free
    expressions) or a sorted disjoint ``[(w0, w1, rate), ...]`` list.
    """
    chan_devices = list(core.chan_devices)
    comp_devices = {d for d in core.device_compute_ops if d is not None}
    link_devices = {d for pair in chan_devices for d in pair}
    all_devices = comp_devices | link_devices
    pair_chans: dict = {}
    touch_chans: dict = {}
    for c, (src, dst) in enumerate(chan_devices):
        pair_chans.setdefault((src, dst), []).append(c)
        touch_chans.setdefault(src, []).append(c)
        if dst != src:
            touch_chans.setdefault(dst, []).append(c)

    def check_device(event: str, device: str) -> None:
        if device not in all_devices:
            raise FaultPlanError(
                f"{event} names unknown device {device!r}; known devices: "
                f"{sorted(all_devices)}" + _suggest(device, all_devices)
            )

    raw_comp: dict = {}
    raw_wire: dict = {}

    def add_wire(chans, w0: float, w1: float, rate: float) -> None:
        for c in chans:
            raw_wire.setdefault(c, []).append((w0, w1, rate))

    def add_comp(device: str, w0: float, w1: float, rate: float) -> None:
        ids = core.device_compute_ops[device]
        rid = int(core.op_res[ids[0]])
        raw_comp.setdefault(rid, []).append((w0, w1, rate))

    for e in plan.events:
        kind = e.kind
        if kind == "link_degradation":
            check_device("LinkDegradation", e.src)
            check_device("LinkDegradation", e.dst)
            chans = list(pair_chans.get((e.src, e.dst), ()))
            if e.dst != e.src:
                chans += pair_chans.get((e.dst, e.src), ())
            if not chans:
                links = sorted(f"{s}->{d}" for s, d in pair_chans)
                raise FaultPlanError(
                    f"LinkDegradation: no wire channel between {e.src!r} "
                    f"and {e.dst!r}; known links: {links}"
                    + _suggest(f"{e.src}->{e.dst}", links)
                )
            add_wire(chans, e.start, e.start + e.duration, e.factor)
        elif kind == "nic_flap":
            check_device("NicFlap", e.device)
            chans = touch_chans.get(e.device)
            if not chans:
                raise FaultPlanError(
                    f"NicFlap: device {e.device!r} touches no wire channel"
                )
            add_wire(chans, e.start, e.start + e.duration, e.factor)
        elif kind == "straggler_burst":
            if e.device not in comp_devices:
                raise FaultPlanError(
                    f"StragglerBurst names unknown compute device "
                    f"{e.device!r}; known devices: {sorted(comp_devices)}"
                    + _suggest(e.device, comp_devices)
                )
            add_comp(e.device, e.start, e.start + e.duration, 1.0 / e.factor)
        elif kind == "host_failure":
            check_device("HostFailure", e.device)
            w1 = e.start + e.recovery
            if e.device in comp_devices:
                add_comp(e.device, e.start, w1, 0.0)
            add_wire(touch_chans.get(e.device, ()), e.start, w1, 0.0)
        else:  # pragma: no cover - FaultPlan validates event types
            raise FaultPlanError(f"unknown fault event kind {kind!r}")

    compute_windows: list = [None] * core.n_res
    for rid, raw in raw_comp.items():
        merged = _merge_windows(raw)
        if merged:
            compute_windows[rid] = merged
    wire_windows: list = [None] * core.n_wire_channels
    for c, raw in raw_wire.items():
        merged = _merge_windows(raw)
        if merged:
            wire_windows[c] = merged
    return compute_windows, wire_windows


def fault_window_rows(variant) -> list:
    """Name-resolved fault windows of a compiled variant, for the trace
    layer: ``(kind, entity, w0, w1, rate)`` tuples with ``kind`` in
    {'compute', 'wire'} and ``entity`` a device name or ``src->dst``."""
    core = variant.core
    rows: list = []
    comp = getattr(variant, "_fault_comp", None)
    wire = getattr(variant, "_fault_wire", None)
    if comp is not None and any(w is not None for w in comp):
        names = core.resource_names()
        for rid, windows in enumerate(comp):
            if windows:
                dev = names[rid].split(":", 1)[1]
                for w0, w1, rate in windows:
                    rows.append(("compute", dev, w0, w1, rate))
    if wire is not None:
        for c, windows in enumerate(wire):
            if windows:
                src, dst = core.chan_devices[c]
                for w0, w1, rate in windows:
                    rows.append(("wire", f"{src}->{dst}", w0, w1, rate))
    return rows
