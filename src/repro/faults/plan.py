"""Declarative, fully deterministic fault plans (ISSUE 9).

A :class:`FaultPlan` is a tuple of typed, time-windowed fault events
describing how the simulated cluster misbehaves:

* :class:`LinkDegradation` — the wire channel(s) between two devices run
  at a fraction of nominal bandwidth inside a window;
* :class:`NicFlap` — every channel touching one device degrades (the
  device's NIC, not a single link);
* :class:`StragglerBurst` — a device's compute slows down by a factor
  inside a window, generalizing the static
  :attr:`repro.sim.config.SimConfig.device_slowdown` to transients;
* :class:`HostFailure` — a device goes dark for a recovery interval:
  its compute stalls (work resumes where it stopped) and chunks on its
  wires when the outage hits are lost and retransmit from scratch at
  recovery.

Plans are plain frozen dataclasses: hashable (so they ride in frozen
specs like :class:`repro.sim.jobmix.JobSpec`), picklable (so they cross
sweep-worker processes) and ``dataclasses.asdict``-able (so they fold
into sweep cache keys — see ``SimCell.key_payload``). Event fields are
validated at construction; *names* are validated later, when the plan is
compiled against a concrete cluster (:mod:`repro.faults.compile`), with
``difflib`` did-you-mean hints in the :class:`FaultPlanError`.

Determinism: a plan contributes no randomness. Fault windows are fixed
intervals on each iteration's own simulated clock (every iteration runs
its event loop from t=0, so the same windows apply to every iteration),
and both event-loop kernels evaluate them with identical floating-point
operation order — results are bit-identical across kernels, and an
empty (or zero-magnitude) plan is byte-identical to no plan at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


class FaultPlanError(ValueError):
    """Malformed fault event, or a device/link name that does not
    resolve against the compiled cluster (carries a ``difflib``
    did-you-mean hint when one is close enough)."""


def _check_window(event: str, start: float, duration: float) -> None:
    if not start >= 0.0:
        raise FaultPlanError(f"{event}: start must be >= 0 (got {start!r})")
    if not duration > 0.0:
        raise FaultPlanError(f"{event}: duration must be > 0 (got {duration!r})")


def _check_bandwidth_factor(event: str, factor: float) -> None:
    if not 0.0 <= factor <= 1.0:
        raise FaultPlanError(
            f"{event}: factor is the bandwidth fraction retained and must "
            f"be in [0, 1] (got {factor!r}; 0 = outage, 1 = no-op)"
        )


@dataclass(frozen=True)
class LinkDegradation:
    """The wire channel(s) between ``src`` and ``dst`` (both directions)
    run at ``factor`` of nominal bandwidth in
    ``[start, start + duration)``. ``factor=0`` is an outage: a chunk on
    the wire when the window opens is lost and retransmits from scratch
    at recovery."""

    src: str
    dst: str
    start: float
    duration: float
    factor: float
    kind: str = field(default="link_degradation", init=False)

    def __post_init__(self) -> None:
        _check_window("LinkDegradation", self.start, self.duration)
        _check_bandwidth_factor("LinkDegradation", self.factor)

    def scoped(self, prefix: str) -> "LinkDegradation":
        return replace(self, src=prefix + self.src, dst=prefix + self.dst)


@dataclass(frozen=True)
class NicFlap:
    """Every wire channel touching ``device`` (as source or destination)
    runs at ``factor`` of nominal bandwidth in
    ``[start, start + duration)`` — a flapping/renegotiating NIC rather
    than a single bad cable."""

    device: str
    start: float
    duration: float
    factor: float
    kind: str = field(default="nic_flap", init=False)

    def __post_init__(self) -> None:
        _check_window("NicFlap", self.start, self.duration)
        _check_bandwidth_factor("NicFlap", self.factor)

    def scoped(self, prefix: str) -> "NicFlap":
        return replace(self, device=prefix + self.device)


@dataclass(frozen=True)
class StragglerBurst:
    """``device``'s compute runs ``factor``x slower inside
    ``[start, start + duration)`` — the transient form of
    ``SimConfig.device_slowdown`` (§6.3 preempted/oversubscribed cloud
    workers). ``factor`` multiplies compute time, so it must be
    >= 1 (1 = no-op)."""

    device: str
    start: float
    duration: float
    factor: float
    kind: str = field(default="straggler_burst", init=False)

    def __post_init__(self) -> None:
        _check_window("StragglerBurst", self.start, self.duration)
        if not self.factor >= 1.0:
            raise FaultPlanError(
                "StragglerBurst: factor multiplies compute time and must "
                f"be >= 1 (got {self.factor!r})"
            )

    def scoped(self, prefix: str) -> "StragglerBurst":
        return replace(self, device=prefix + self.device)


@dataclass(frozen=True)
class HostFailure:
    """``device`` goes dark in ``[start, start + recovery)``: compute in
    flight stalls and resumes where it stopped at recovery; chunks on
    any wire touching the device are lost and retransmit from scratch at
    recovery (the PS-failure model: state survives, in-flight RPCs do
    not)."""

    device: str
    start: float
    recovery: float
    kind: str = field(default="host_failure", init=False)

    def __post_init__(self) -> None:
        _check_window("HostFailure", self.start, self.recovery)

    def scoped(self, prefix: str) -> "HostFailure":
        return replace(self, device=prefix + self.device)


#: every concrete event type a plan may hold.
EVENT_TYPES = (LinkDegradation, NicFlap, StragglerBurst, HostFailure)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, hashable set of fault events.

    Construction validates event *types* only; names resolve against a
    concrete cluster at compile time
    (:func:`repro.faults.compile.compile_fault_plan`). Plans compose
    with ``+`` and re-namespace with :meth:`scoped` (the job-mix path
    prefixes each job's plan into its ``j<i>/`` namespace)."""

    events: tuple = ()

    def __post_init__(self) -> None:
        events = tuple(self.events)
        for e in events:
            if not isinstance(e, EVENT_TYPES):
                names = sorted(t.__name__ for t in EVENT_TYPES)
                raise FaultPlanError(
                    f"fault events must be one of {names}; got {e!r}"
                )
        object.__setattr__(self, "events", events)

    @property
    def is_empty(self) -> bool:
        return not self.events

    def scoped(self, prefix: str) -> "FaultPlan":
        """The same plan with every device name prefixed (job-mix
        namespaces: ``plan.scoped('j0/')``)."""
        return FaultPlan(tuple(e.scoped(prefix) for e in self.events))

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return FaultPlan(self.events + other.events)
