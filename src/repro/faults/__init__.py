"""Deterministic fault injection (ISSUE 9).

Declarative :class:`FaultPlan` objects describe link degradation, NIC
flaps, straggler bursts and host failures as fixed time windows on the
simulated clock; :mod:`repro.faults.compile` lowers a plan onto a
compiled core, and both event-loop kernels honor the windows
bit-identically. Attach a plan via ``SimConfig(faults=...)`` (whole
cluster) or ``JobSpec(faults=...)`` (one job of a mix, auto-scoped into
its namespace).
"""

from .compile import compile_fault_plan, fault_window_rows
from .plan import (
    EVENT_TYPES,
    FaultPlan,
    FaultPlanError,
    HostFailure,
    LinkDegradation,
    NicFlap,
    StragglerBurst,
)

__all__ = [
    "EVENT_TYPES",
    "FaultPlan",
    "FaultPlanError",
    "HostFailure",
    "LinkDegradation",
    "NicFlap",
    "StragglerBurst",
    "compile_fault_plan",
    "fault_window_rows",
]
