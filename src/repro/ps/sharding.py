"""Parameter placement across parameter servers.

TensorFlow's ``replica_device_setter`` assigns variables to PS tasks either
round-robin or by a greedy load-balancing strategy; both are provided.
Placement determines which PS↔worker channel each parameter's transfers
occupy, and therefore the per-channel load balance that Fig. 9 (PS scaling)
probes.
"""

from __future__ import annotations

from typing import Sequence

from ..models.ir import ParamTensor

STRATEGIES = ("greedy", "round_robin")


def ps_device_names(n_ps: int) -> list[str]:
    if n_ps <= 0:
        raise ValueError("need at least one parameter server")
    return [f"ps:{j}" for j in range(n_ps)]


def worker_device_names(n_workers: int) -> list[str]:
    if n_workers <= 0:
        raise ValueError("need at least one worker")
    return [f"worker:{i}" for i in range(n_workers)]


def shard_parameters(
    params: Sequence[ParamTensor],
    ps_devices: Sequence[str],
    strategy: str = "greedy",
) -> dict[str, str]:
    """Map each parameter name to a PS device.

    ``greedy`` (default, mirrors TF's ``GreedyLoadBalancingStrategy`` with a
    byte-size load function): place parameters in definition order on the
    currently least-loaded PS. ``round_robin`` cycles through PS tasks in
    definition order.
    """
    if not ps_devices:
        raise ValueError("ps_devices must be non-empty")
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; one of {STRATEGIES}")
    placement: dict[str, str] = {}
    if strategy == "round_robin":
        for i, p in enumerate(params):
            placement[p.name] = ps_devices[i % len(ps_devices)]
        return placement
    load = {d: 0 for d in ps_devices}
    for p in params:
        # min() is stable: ties go to the lowest-indexed PS, like TF.
        target = min(ps_devices, key=lambda d: load[d])
        placement[p.name] = target
        load[target] += p.nbytes
    return placement


def shard_loads(
    params: Sequence[ParamTensor], placement: dict[str, str]
) -> dict[str, int]:
    """Bytes hosted per PS device under ``placement``."""
    loads: dict[str, int] = {}
    for p in params:
        loads[placement[p.name]] = loads.get(placement[p.name], 0) + p.nbytes
    return loads
