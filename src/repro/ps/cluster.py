"""Model-Replica + Parameter-Server cluster graph assembly (§2.2, Fig. 2).

One :class:`ClusterGraph` holds everything a single synchronous iteration
executes, resource-tagged:

* per worker, a model replica whose parameters enter through ``recv`` roots
  (and, in training, whose gradients exit through ``send`` leaves);
* per parameter on its PS shard, the paper's five-op PS subgraph —
  ``read`` (serve last iteration's value), per-worker ``send`` activation,
  the transfer itself, and in training per-worker gradient ``recv``
  bookkeeping, ``aggregate`` and ``update``.

A transfer is modeled as a single op occupying the directional channel
``link:src->dst`` (gRPC's one-active-transfer-per-channel semantics, §5.1);
the PS-side ``send``/``recv`` activations are zero-cost ops on the PS
compute resource that preserve the paper's DAG structure and give the
enforcement module its hand-off point.

Iteration semantics: the graph covers one barrier-to-barrier iteration.
``read`` ops have no dependency on this iteration's ``update`` (they serve
the previous iteration's value); ``update`` ops are leaves consumed by the
next iteration. The makespan of this DAG is the paper's iteration time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..graph import Graph, Op, OpKind, Resource
from ..models.emit import WORKER_INFERENCE, WORKER_TRAINING, emit_graph
from ..models.ir import ModelIR
from .sharding import ps_device_names, shard_parameters, worker_device_names

WORKLOADS = ("inference", "training")


@dataclass(frozen=True)
class ClusterSpec:
    """Cluster shape: W workers, S parameter servers, workload kind.

    ``workload='inference'`` models the RL serving setup of Fig. 3 (agents
    pull parameters and run forward passes); ``'training'`` is synchronous
    SGD with gradient push and PS-side aggregation.
    """

    n_workers: int
    n_ps: int
    workload: str = "training"
    sharding: str = "greedy"

    def __post_init__(self) -> None:
        if self.n_workers <= 0 or self.n_ps <= 0:
            raise ValueError("n_workers and n_ps must be positive")
        if self.workload not in WORKLOADS:
            raise ValueError(f"workload must be one of {WORKLOADS}")

    @property
    def workers(self) -> list[str]:
        return worker_device_names(self.n_workers)

    @property
    def ps(self) -> list[str]:
        return ps_device_names(self.n_ps)


@dataclass(frozen=True)
class Transfer:
    """One network transfer: the unit the enforcement module orders."""

    op_id: int
    param: str
    src: str
    dst: str
    #: 'param' for PS->worker pulls (the recvs TicTac schedules) or 'grad'.
    kind: str
    #: which unrolled iteration this transfer belongs to (§5.1's counters
    #: are per worker *per iteration*).
    iteration: int = 0


@dataclass
class ClusterGraph:
    """A fully assembled, resource-tagged cluster DAG (one iteration by
    default; ``n_iterations > 1`` unrolls a pipelined window)."""

    spec: ClusterSpec
    model: ModelIR
    graph: Graph
    placement: dict[str, str]
    #: every transfer, grouped by the link resource it occupies.
    transfers_by_link: dict[Resource, list[Transfer]] = field(default_factory=dict)
    #: op ids per worker device (for straggler accounting).
    worker_ops: dict[str, list[int]] = field(default_factory=dict)
    #: per-worker map param name -> recv transfer op id (last iteration).
    param_recvs: dict[str, dict[str, int]] = field(default_factory=dict)
    #: op ids per unrolled iteration (for pipelined span accounting).
    iteration_ops: dict[int, list[int]] = field(default_factory=dict)
    n_iterations: int = 1

    @property
    def param_transfers(self) -> list[Transfer]:
        return [
            t
            for transfers in self.transfers_by_link.values()
            for t in transfers
            if t.kind == "param"
        ]

    def _register_transfer(self, link: Resource, transfer: Transfer) -> None:
        self.transfers_by_link.setdefault(link, []).append(transfer)


def build_cluster_graph(
    ir: ModelIR,
    spec: ClusterSpec,
    *,
    placement: Optional[Mapping[str, str]] = None,
    n_iterations: int = 1,
) -> ClusterGraph:
    """Assemble the cluster DAG for ``ir`` under ``spec``.

    ``n_iterations=1`` (default) builds the barrier-to-barrier iteration
    used throughout the paper's measurement protocol. ``n_iterations>1``
    unrolls a pipelined window: in training, iteration k+1's ``read`` of a
    parameter depends on its iteration-k ``update`` (per-parameter
    pipelining across the barrier); in inference, iteration k+1's send
    activations to an agent wait for that agent's iteration-k output (the
    agent requests fresh parameters after acting).
    """
    if n_iterations <= 0:
        raise ValueError("n_iterations must be positive")
    if placement is None:
        placement = shard_parameters(ir.params, spec.ps, spec.sharding)
    else:
        placement = dict(placement)
        missing = [p.name for p in ir.params if p.name not in placement]
        if missing:
            raise ValueError(f"placement missing parameters, e.g. {missing[:3]}")

    mode = WORKER_TRAINING if spec.workload == "training" else WORKER_INFERENCE
    g = Graph(
        f"{ir.name}/{spec.workload}/w{spec.n_workers}xps{spec.n_ps}"
        + (f"/unrolled{n_iterations}" if n_iterations > 1 else "")
    )
    cluster = ClusterGraph(
        spec=spec, model=ir, graph=g, placement=dict(placement),
        n_iterations=n_iterations,
    )
    params = ir.params
    training = spec.workload == "training"
    replica = emit_graph(ir, mode, placement=placement)

    #: iteration-(k-1) update op per param (training pipelining).
    prev_update: dict[str, Op] = {}
    #: iteration-(k-1) final output op per worker (inference agent loop).
    prev_output: dict[str, Op] = {}
    final_local_name = replica.output_ops[list(ir.nodes)[-1]]

    for k in range(n_iterations):
        prefix = f"it{k}/" if n_iterations > 1 else ""
        iteration_op_ids: list[int] = []

        # --- PS-side reads: serve the latest updated value ---------------
        read_ops: dict[str, Op] = {}
        for p in params:
            ps_dev = placement[p.name]
            deps = []
            if p.name in prev_update:
                deps.append(prev_update[p.name].op_id)
            read_ops[p.name] = g.add_op(
                f"{prefix}{ps_dev}/{p.name}/read",
                OpKind.READ,
                deps,
                cost=0.0,
                param=p.name,
                device=ps_dev,
                resource=Resource.compute(ps_dev),
                timing_key=f"{p.name}/ps_read",
            )
            iteration_op_ids.append(read_ops[p.name].op_id)

        # --- worker replicas, stitched to the PS subgraphs ---------------
        grad_send_ops: dict[str, list[Op]] = {p.name: [] for p in params}
        for worker in spec.workers:
            compute = Resource.compute(worker)
            mapping = g.merge(
                replica.graph, rename=lambda n: f"{prefix}{worker}/{n}"
            )
            worker_op_ids = cluster.worker_ops.setdefault(worker, [])
            recv_ids: dict[str, int] = {}
            for src_op in replica.graph:
                op = g.op(mapping[src_op.op_id])
                op.device = worker
                worker_op_ids.append(op.op_id)
                iteration_op_ids.append(op.op_id)
                if op.kind is OpKind.RECV:
                    ps_dev = op.attrs["ps"]
                    link = Resource.link(ps_dev, worker)
                    op.resource = link
                    recv_ids[op.param] = op.op_id
                    cluster._register_transfer(
                        link,
                        Transfer(op.op_id, op.param, ps_dev, worker, "param", k),
                    )
                    # PS-side send activation: the §5.1 hand-off point.
                    send_deps = [read_ops[op.param].op_id]
                    if worker in prev_output:
                        # agent loop: next pull requested after acting
                        send_deps.append(prev_output[worker].op_id)
                    send = g.add_op(
                        f"{prefix}{ps_dev}/{op.param}/send->{worker}",
                        OpKind.SEND,
                        send_deps,
                        cost=0.0,
                        param=op.param,
                        device=ps_dev,
                        resource=Resource.compute(ps_dev),
                        timing_key=f"{op.param}/ps_send",
                        # Activation/bookkeeping op on the PS compute
                        # resource; payload time lives on the recv op.
                        activation_only=True,
                    )
                    iteration_op_ids.append(send.op_id)
                    g.add_edge(send.op_id, op.op_id)
                elif op.kind is OpKind.SEND:
                    ps_dev = op.attrs["ps"]
                    link = Resource.link(worker, ps_dev)
                    op.resource = link
                    grad_send_ops[op.param].append(op)
                    cluster._register_transfer(
                        link,
                        Transfer(op.op_id, op.param, worker, ps_dev, "grad", k),
                    )
                else:
                    op.resource = compute
            cluster.param_recvs[worker] = recv_ids
            if not training:
                prev_output[worker] = g.op(f"{prefix}{worker}/{final_local_name}")

        # --- training: gradient recv / aggregate / update per parameter --
        if training:
            for p in params:
                ps_dev = placement[p.name]
                ps_compute = Resource.compute(ps_dev)
                recv_acts = []
                for send_op in grad_send_ops[p.name]:
                    recv_acts.append(
                        g.add_op(
                            f"{prefix}{ps_dev}/{p.name}/recv<-{send_op.device}",
                            OpKind.RECV,
                            [send_op.op_id],
                            cost=0.0,
                            param=p.name,
                            device=ps_dev,
                            resource=ps_compute,
                            timing_key=f"{p.name}/ps_recv_grad",
                            # PS-side activation: zero-cost bookkeeping,
                            # not a second pass over the channel.
                            activation_only=True,
                        )
                    )
                agg = g.add_op(
                    f"{prefix}{ps_dev}/{p.name}/aggregate",
                    OpKind.AGGREGATE,
                    [r.op_id for r in recv_acts],
                    cost=float(spec.n_workers * p.n_elements),
                    param=p.name,
                    device=ps_dev,
                    resource=ps_compute,
                    timing_key=f"{p.name}/ps_aggregate",
                )
                update = g.add_op(
                    f"{prefix}{ps_dev}/{p.name}/update",
                    OpKind.UPDATE,
                    [agg.op_id],
                    cost=2.0 * p.n_elements,
                    param=p.name,
                    device=ps_dev,
                    resource=ps_compute,
                    timing_key=f"{p.name}/ps_update",
                )
                prev_update[p.name] = update
                iteration_op_ids.extend(
                    [r.op_id for r in recv_acts] + [agg.op_id, update.op_id]
                )
        cluster.iteration_ops[k] = iteration_op_ids

    return cluster
