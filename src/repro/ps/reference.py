"""Reference worker partition construction (§4's algorithm input).

TIC and TAC run offline on a *single* worker's partitioned graph (the
"reference worker"); the resulting priorities are then applied at every
worker, which is exactly what removes cross-worker order divergence and
stragglers. This module builds that reference partition without paying for
a full cluster assembly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..graph import Graph, PartitionedGraph, assign_worker_resources
from ..models.emit import (
    WORKER_INFERENCE,
    WORKER_TRAINING,
    EmitResult,
    emit_graph,
)
from ..models.ir import ModelIR
from .sharding import ps_device_names, shard_parameters


@dataclass
class ReferencePartition:
    """A single worker's partitioned graph plus its emission indexes."""

    graph: Graph
    emit: EmitResult
    partition: PartitionedGraph
    placement: dict[str, str]

    @property
    def recv_params(self) -> list[str]:
        """Parameter names in recv-op order (the schedule's domain)."""
        return [op.param for op in self.graph.recv_ops()]


def build_reference_partition(
    ir: ModelIR,
    *,
    workload: str = "training",
    n_ps: int = 1,
    sharding: str = "greedy",
    placement: Optional[Mapping[str, str]] = None,
    worker: str = "worker:0",
) -> ReferencePartition:
    """Emit and resource-tag one worker replica of ``ir``.

    The partition sees one link per direction per PS shard, matching what
    that worker observes inside a full cluster.
    """
    if placement is None:
        placement = shard_parameters(ir.params, ps_device_names(n_ps), sharding)
    else:
        placement = dict(placement)
    mode = WORKER_TRAINING if workload == "training" else WORKER_INFERENCE
    result = emit_graph(ir, mode, placement=placement)
    graph = assign_worker_resources(result.graph, worker, sorted(set(placement.values())))
    graph.validate()
    return ReferencePartition(
        graph=graph,
        emit=result,
        partition=PartitionedGraph(graph),
        placement=dict(placement),
    )
