"""Parameter-server substrate: sharding, PS subgraphs, cluster assembly."""

from .cluster import (
    WORKLOADS,
    ClusterGraph,
    ClusterSpec,
    Transfer,
    build_cluster_graph,
)
from .reference import ReferencePartition, build_reference_partition
from .sharding import (
    STRATEGIES,
    ps_device_names,
    shard_loads,
    shard_parameters,
    worker_device_names,
)

__all__ = [
    "WORKLOADS",
    "ClusterGraph",
    "ClusterSpec",
    "Transfer",
    "build_cluster_graph",
    "ReferencePartition",
    "build_reference_partition",
    "STRATEGIES",
    "ps_device_names",
    "shard_loads",
    "shard_parameters",
    "worker_device_names",
]
